package oms

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/oms/backend"
	"repro/internal/oms/blobstore"
)

// blobStore returns a store with a CAS attached, spilling at 64 bytes.
func blobStore(t *testing.T) (*Store, *blobstore.Store) {
	t.Helper()
	be, err := backend.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blobstore.New(be)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(testSchema(t))
	st.AttachBlobs(bs, 64)
	return st, bs
}

func bigBlob() []byte  { return bytes.Repeat([]byte("macro-cell "), 100) }
func tinyBlob() []byte { return []byte("tiny") }

// TestSpillOnCopyIn: the single-op CopyIn path spills at-threshold data
// to the CAS, stores only a ref, and resolves it back on CopyOut.
func TestSpillOnCopyIn(t *testing.T) {
	st, bs := blobStore(t)
	cell := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu")})
	src := filepath.Join(t.TempDir(), "alu.lay")
	data := bigBlob()
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := st.CopyIn(cell, "data", src)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("CopyIn reported %d bytes, want %d", n, len(data))
	}
	v, ok, err := st.Get(cell, "data")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if v.Kind != KindBlobRef {
		t.Fatalf("stored kind = %s, want blobref", v.Kind)
	}
	ref, err := v.AsBlobRef()
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Has(ref) || ref.Size != int64(len(data)) {
		t.Fatalf("CAS does not hold the spilled blob (%v, size %d)", bs.Has(ref), ref.Size)
	}
	dst := filepath.Join(t.TempDir(), "out.lay")
	if _, err := st.CopyOut(cell, "data", dst); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("CopyOut bytes differ from CopyIn bytes")
	}
	if got, err := st.BlobBytes(cell, "data"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("BlobBytes: %v", err)
	}
}

// TestSpillThreshold: sub-threshold blobs stay inline.
func TestSpillThreshold(t *testing.T) {
	st, bs := blobStore(t)
	cell := mustCreate(t, st, "Cell", map[string]Value{"name": S("inv")})
	b := NewBatch()
	b.CopyInBytes(cell, "data", tinyBlob())
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	v, _, _ := st.Get(cell, "data")
	if v.Kind != KindBlob {
		t.Fatalf("tiny blob spilled: kind = %s", v.Kind)
	}
	if bs.Count() != 0 {
		t.Fatalf("CAS holds %d blobs for inline data", bs.Count())
	}
}

// TestSpillInBatch: Apply's staging phase spills CopyInBytes ops; two
// identical payloads in one batch dedup to one physical blob.
func TestSpillInBatch(t *testing.T) {
	st, bs := blobStore(t)
	a := mustCreate(t, st, "Cell", map[string]Value{"name": S("a")})
	c := mustCreate(t, st, "Cell", map[string]Value{"name": S("b")})
	data := bigBlob()
	b := NewBatch()
	b.CopyInBytes(a, "data", data)
	b.CopyInBytes(c, "data", data)
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	for _, oid := range []OID{a, c} {
		got, err := st.BlobBytes(oid, "data")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("object %d: %v", oid, err)
		}
	}
	if bs.Count() != 1 {
		t.Fatalf("CAS holds %d blobs, want 1 (dedup)", bs.Count())
	}
	stats := st.BlobStatsNow()
	if stats.LogicalIn != 2*int64(len(data)) {
		t.Fatalf("LogicalIn = %d, want %d", stats.LogicalIn, 2*len(data))
	}
	if stats.PhysicalIn != int64(len(data)) {
		t.Fatalf("PhysicalIn = %d, want %d (one physical copy)", stats.PhysicalIn, len(data))
	}
	if stats.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1", stats.DedupHits)
	}
}

// TestPlainSetNeverSpills: Set with a KindBlob value is not a design-data
// op and must not detour through the CAS, whatever its size.
func TestPlainSetNeverSpills(t *testing.T) {
	st, bs := blobStore(t)
	cell := mustCreate(t, st, "Cell", map[string]Value{"name": S("raw")})
	if err := st.Set(cell, "data", Bytes(bigBlob())); err != nil {
		t.Fatal(err)
	}
	v, _, _ := st.Get(cell, "data")
	if v.Kind != KindBlob || bs.Count() != 0 {
		t.Fatalf("plain Set spilled: kind=%s cas=%d", v.Kind, bs.Count())
	}
}

// TestSnapshotCarriesRefs: a snapshot of a store with spilled blobs
// encodes the ~40-byte refs, not the design bytes, and decodes against a
// store that re-attaches the same CAS.
func TestSnapshotCarriesRefs(t *testing.T) {
	st, bs := blobStore(t)
	cell := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu")})
	data := bigBlob()
	b := NewBatch()
	b.CopyInBytes(cell, "data", data)
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	enc, err := st.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > 4096 {
		t.Fatalf("snapshot is %d bytes — it shipped the blob, not the ref", len(enc))
	}
	st2, err := DecodeSnapshot(enc, st.schema)
	if err != nil {
		t.Fatal(err)
	}
	st2.AttachBlobs(bs, 64)
	got, err := st2.BlobBytes(cell, "data")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("decoded store cannot resolve ref: %v", err)
	}
}

// TestFeedCarriesRefs: the change feed (and so every replication frame
// and differential delta) carries the ref; replay into a fresh store
// accepts a blobref value for a KindBlob attribute.
func TestFeedCarriesRefs(t *testing.T) {
	st, bs := blobStore(t)
	sub, err := st.Watch(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	cell := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu")})
	data := bigBlob()
	b := NewBatch()
	b.CopyInBytes(cell, "data", data)
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	var recs []Change
	for len(recs) < 2 {
		recs = append(recs, <-sub.C()...)
	}
	enc, err := EncodeChanges(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > 4096 {
		t.Fatalf("change frame is %d bytes — it shipped the blob, not the ref", len(enc))
	}
	dec, err := DecodeChanges(enc)
	if err != nil {
		t.Fatal(err)
	}
	follower := NewStore(testSchema(t))
	follower.AttachBlobs(bs, 0)
	if err := follower.ApplyReplicated(dec); err != nil {
		t.Fatal(err)
	}
	got, err := follower.BlobBytes(cell, "data")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("follower cannot resolve replayed ref: %v", err)
	}
}

// TestForEachBlobRef: the GC live-set walk sees exactly the spilled refs.
func TestForEachBlobRef(t *testing.T) {
	st, _ := blobStore(t)
	cell := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu")})
	b := NewBatch()
	b.CopyInBytes(cell, "data", bigBlob())
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	var n int
	st.ForEachBlobRef(func(oid OID, attr string, r blobstore.Ref) {
		n++
		if oid != cell || attr != "data" || r.Size != int64(len(bigBlob())) {
			t.Fatalf("unexpected ref: oid=%d attr=%s size=%d", oid, attr, r.Size)
		}
	})
	if n != 1 {
		t.Fatalf("walked %d refs, want 1", n)
	}
}

// TestBlobRefValueBasics: Equal, String and AsBlobRef on ref values.
func TestBlobRefValueBasics(t *testing.T) {
	r := blobstore.RefOf([]byte("payload"))
	v := BlobRef(r)
	w := BlobRef(r)
	if !v.Equal(w) {
		t.Fatal("identical refs not Equal")
	}
	w.Int++
	if v.Equal(w) {
		t.Fatal("size-differing refs Equal")
	}
	back, err := v.AsBlobRef()
	if err != nil || back != r {
		t.Fatalf("AsBlobRef round-trip: %v", err)
	}
	if _, err := S("not-a-ref").AsBlobRef(); err == nil {
		t.Fatal("AsBlobRef accepted a string value")
	}
	if KindBlobRef.String() != "blobref" {
		t.Fatalf("Kind.String = %q", KindBlobRef.String())
	}
}
