package oms

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// atomicU64 is a tiny alias keeping the stress test readable.
type atomicU64 = atomic.Uint64

// feedSchema builds the small schema the feed tests share.
func feedSchema(t testing.TB) *Schema {
	t.Helper()
	s := NewSchema()
	if err := s.AddClass("Cell",
		AttrDef{Name: "name", Kind: KindString, Required: true},
		AttrDef{Name: "rev", Kind: KindInt},
		AttrDef{Name: "data", Kind: KindBlob}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("Version",
		AttrDef{Name: "num", Kind: KindInt, Required: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRel(RelDef{Name: "hasVersion", From: "Cell", To: "Version",
		FromCard: One, ToCard: Many}); err != nil {
		t.Fatal(err)
	}
	return s
}

// fingerprint renders the store's full content deterministically with
// the allocator position masked out (failed batches burn OIDs without
// leaving records, so replayed stores may disagree on next_oid while
// agreeing on every object and link).
func fingerprint(t testing.TB, st *Store) string {
	t.Helper()
	data, err := st.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "next_oid")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// replayed rebuilds a store from a change sequence via the wire format.
func replayed(t *testing.T, schema *Schema, recs []Change) *Store {
	t.Helper()
	payload, err := EncodeChanges(recs)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeChanges(payload)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(schema)
	if err := st.ReplayChanges(decoded); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFeedSequencedRecords: every committed single op appears in the
// feed exactly once, in contiguous LSN order, carrying the op's content.
func TestFeedSequencedRecords(t *testing.T) {
	schema := feedSchema(t)
	st := NewStore(schema)
	cell, err := st.Create("Cell", map[string]Value{"name": S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := st.Create("Version", map[string]Value{"num": I(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Link("hasVersion", cell, v1); err != nil {
		t.Fatal(err)
	}
	if err := st.Set(cell, "rev", I(7)); err != nil {
		t.Fatal(err)
	}
	if err := st.Unlink("hasVersion", cell, v1); err != nil {
		t.Fatal(err)
	}
	// Idempotent no-ops publish nothing.
	if err := st.Unlink("hasVersion", cell, v1); err != nil {
		t.Fatal(err)
	}
	recs, ok := st.Changes(0)
	if !ok {
		t.Fatal("feed reported eviction on a fresh store")
	}
	wantKinds := []ChangeKind{ChangeCreate, ChangeCreate, ChangeLink, ChangeSet, ChangeUnlink}
	if len(recs) != len(wantKinds) {
		t.Fatalf("feed has %d records, want %d: %+v", len(recs), len(wantKinds), recs)
	}
	for i, c := range recs {
		if c.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d", i, c.LSN, i+1)
		}
		if c.Kind != wantKinds[i] {
			t.Fatalf("record %d kind = %v, want %v", i, c.Kind, wantKinds[i])
		}
		if c.Group != c.LSN {
			t.Fatalf("single op record %d has group %d != lsn %d", i, c.Group, c.LSN)
		}
	}
	if recs[0].Class != "Cell" || recs[0].Attrs["name"].Str != "alu" {
		t.Fatalf("create record content: %+v", recs[0])
	}
	if recs[3].Attr != "rev" || recs[3].Value.Int != 7 || recs[3].Class != "Cell" {
		t.Fatalf("set record content: %+v", recs[3])
	}
	if st.FeedLSN() != 5 {
		t.Fatalf("FeedLSN = %d, want 5", st.FeedLSN())
	}
	// Suffix reads honour the cursor.
	tail, ok := st.Changes(3)
	if !ok || len(tail) != 2 || tail[0].LSN != 4 {
		t.Fatalf("Changes(3) = %+v, %t", tail, ok)
	}
	// Replay reproduces the store exactly.
	if got, want := fingerprint(t, replayed(t, schema, recs)), fingerprint(t, st); got != want {
		t.Fatalf("replayed store diverges:\n got %s\nwant %s", got, want)
	}
}

// TestFeedBatchGroup: an Apply publishes one contiguous group; a failed
// Apply publishes nothing at all.
func TestFeedBatchGroup(t *testing.T) {
	schema := feedSchema(t)
	st := NewStore(schema)
	before := st.FeedLSN()
	b := NewBatch()
	cell := b.Create("Cell", map[string]Value{"name": S("alu")})
	ver := b.Create("Version", map[string]Value{"num": I(1)})
	b.Link("hasVersion", cell, ver)
	b.Set(cell, "rev", I(1))
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	recs, _ := st.Changes(before)
	if len(recs) != 4 {
		t.Fatalf("batch published %d records, want 4", len(recs))
	}
	for _, c := range recs {
		if c.Group != recs[0].LSN {
			t.Fatalf("batch group torn: %+v", recs)
		}
	}

	// Failed batch: the Version class requires num, so op 2 fails after
	// op 1 applied — nothing may reach the feed.
	before = st.FeedLSN()
	fb := NewBatch()
	fb.Create("Cell", map[string]Value{"name": S("mul")})
	fb.Link("hasVersion", -1, OID(999999)) // no such target: fails mid-batch
	if _, err := st.Apply(fb); err == nil {
		t.Fatal("batch with dangling link applied")
	}
	if recs, _ := st.Changes(before); len(recs) != 0 {
		t.Fatalf("failed batch leaked %d records into the feed", len(recs))
	}
}

// TestFeedDeleteCascadeGroup: Delete publishes its link detaches and the
// removal as one group, and replay honours it.
func TestFeedDeleteCascadeGroup(t *testing.T) {
	schema := feedSchema(t)
	st := NewStore(schema)
	cell, _ := st.Create("Cell", map[string]Value{"name": S("alu")})
	v1, _ := st.Create("Version", map[string]Value{"num": I(1)})
	v2, _ := st.Create("Version", map[string]Value{"num": I(2)})
	if err := st.Link("hasVersion", cell, v1); err != nil {
		t.Fatal(err)
	}
	if err := st.Link("hasVersion", cell, v2); err != nil {
		t.Fatal(err)
	}
	before := st.FeedLSN()
	if err := st.Delete(cell); err != nil {
		t.Fatal(err)
	}
	recs, _ := st.Changes(before)
	if len(recs) != 3 { // 2 unlinks + 1 delete
		t.Fatalf("delete cascade published %d records, want 3: %+v", len(recs), recs)
	}
	for _, c := range recs {
		if c.Group != recs[0].LSN {
			t.Fatal("delete cascade split across groups")
		}
	}
	if recs[len(recs)-1].Kind != ChangeDelete {
		t.Fatalf("cascade must end with the delete record: %+v", recs)
	}
	all, _ := st.Changes(0)
	if got, want := fingerprint(t, replayed(t, schema, all)), fingerprint(t, st); got != want {
		t.Fatalf("replayed store diverges after delete:\n got %s\nwant %s", got, want)
	}
}

// TestFeedRollbackCompensation: a rolled-back transaction's forward
// records stay in the feed and one compensation group follows; replaying
// the whole feed lands on the rolled-back state.
func TestFeedRollbackCompensation(t *testing.T) {
	schema := feedSchema(t)
	st := NewStore(schema)
	cell, _ := st.Create("Cell", map[string]Value{"name": S("alu"), "rev": I(1)})
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	v, err := st.Create("Version", map[string]Value{"num": I(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Link("hasVersion", cell, v); err != nil {
		t.Fatal(err)
	}
	if err := st.Set(cell, "rev", I(2)); err != nil {
		t.Fatal(err)
	}
	preRollback := st.FeedLSN()
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	comps, _ := st.Changes(preRollback)
	if len(comps) != 3 {
		t.Fatalf("rollback published %d compensations, want 3: %+v", len(comps), comps)
	}
	for _, c := range comps {
		if c.Group != comps[0].LSN {
			t.Fatal("compensation group torn")
		}
	}
	// Compensations run in reverse replay order: set back, unlink, delete.
	if comps[0].Kind != ChangeSet || comps[0].Value.Int != 1 {
		t.Fatalf("first compensation = %+v, want rev back to 1", comps[0])
	}
	if comps[1].Kind != ChangeUnlink || comps[2].Kind != ChangeDelete {
		t.Fatalf("compensations = %+v", comps)
	}
	all, _ := st.Changes(0)
	if got, want := fingerprint(t, replayed(t, schema, all)), fingerprint(t, st); got != want {
		t.Fatalf("replay after rollback diverges:\n got %s\nwant %s", got, want)
	}
	if st.Count("Version") != 0 {
		t.Fatal("rollback left the version behind")
	}
}

// TestSnapshotLSNAnchorsDelta: a snapshot plus the change suffix after
// its LSN reproduces the live store — the differential-save contract.
func TestSnapshotLSNAnchorsDelta(t *testing.T) {
	schema := feedSchema(t)
	st := NewStore(schema)
	cell, _ := st.Create("Cell", map[string]Value{"name": S("alu")})
	snap := st.Snapshot()
	if snap.LSN() != st.FeedLSN() {
		t.Fatalf("snapshot LSN %d != feed LSN %d", snap.LSN(), st.FeedLSN())
	}
	// Mutations after the cut.
	v, _ := st.Create("Version", map[string]Value{"num": I(1)})
	if err := st.Link("hasVersion", cell, v); err != nil {
		t.Fatal(err)
	}
	if err := st.Set(cell, "data", Bytes([]byte("netlist"))); err != nil {
		t.Fatal(err)
	}
	base, err := snap.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeSnapshot(base, schema)
	if err != nil {
		t.Fatal(err)
	}
	delta, ok := st.Changes(snap.LSN())
	if !ok {
		t.Fatal("delta evicted")
	}
	payload, err := EncodeChanges(delta)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeChanges(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReplayChanges(decoded); err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, restored), fingerprint(t, st); got != want {
		t.Fatalf("base+delta diverges from live store:\n got %s\nwant %s", got, want)
	}
}

// TestFeedEviction: once the ring wraps, stale cursors are told the
// range is incomplete and stale Watch starts are refused.
func TestFeedEviction(t *testing.T) {
	schema := feedSchema(t)
	st := NewStore(schema)
	cell, _ := st.Create("Cell", map[string]Value{"name": S("alu")})
	for i := 0; i < feedMaxRecords+10; i++ {
		if err := st.Set(cell, "rev", I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := st.Changes(0); ok {
		t.Fatal("evicted range reported complete")
	}
	if _, err := st.Watch(0, 1); err == nil {
		t.Fatal("watch from evicted position accepted")
	}
	// A fresh cursor still works.
	if recs, ok := st.Changes(st.FeedLSN() - 5); !ok || len(recs) != 5 {
		t.Fatalf("recent suffix: ok=%t len=%d", ok, len(recs))
	}
}

// TestFeedWatchDelivery: a subscriber sees every group whole and in
// order, and Close terminates the stream.
func TestFeedWatchDelivery(t *testing.T) {
	schema := feedSchema(t)
	st := NewStore(schema)
	sub, err := st.Watch(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := st.Create("Cell", map[string]Value{"name": S("alu")})
	b := NewBatch()
	v := b.Create("Version", map[string]Value{"num": I(1)})
	b.Link("hasVersion", cell, v)
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	var groups [][]Change
	deadline := time.After(5 * time.Second)
	for lsn := uint64(0); lsn < 3; {
		select {
		case g := <-sub.C():
			groups = append(groups, g)
			lsn = g[len(g)-1].LSN
		case <-deadline:
			t.Fatalf("timed out; got %d groups", len(groups))
		}
	}
	if len(groups) != 2 || len(groups[0]) != 1 || len(groups[1]) != 2 {
		t.Fatalf("group shapes wrong: %+v", groups)
	}
	sub.Close()
	for range sub.C() {
	}
	if sub.Lagged() {
		t.Fatal("clean close reported lag")
	}
}

// TestFeedWatchCloseWhileBlocked: Close must terminate a delivery
// goroutine that is parked on a send to a consumer that stopped
// receiving — the channel closes instead of leaking the goroutine.
func TestFeedWatchCloseWhileBlocked(t *testing.T) {
	schema := feedSchema(t)
	st := NewStore(schema)
	cell, _ := st.Create("Cell", map[string]Value{"name": S("alu")})
	sub, err := st.Watch(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Far more groups than the channel buffer; the delivery goroutine
	// must end up blocked in the send.
	for i := 0; i < 64; i++ {
		if err := st.Set(cell, "rev", I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond) // let the goroutine park on the send
	sub.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.C():
			if !ok {
				return // channel closed: the goroutine exited
			}
		case <-deadline:
			t.Fatal("delivery channel never closed after Close")
		}
	}
}

// TestFeedConformanceStress is the acceptance stress: concurrent
// designers issue grouped and single mutations against one store while
// a Watch subscriber and polling Changes readers consume the feed. Every
// committed op must appear exactly once, in contiguous LSN order, groups
// must arrive whole, and replaying everything must rebuild the exact
// store. Run under -race by `make stress-feed`.
func TestFeedConformanceStress(t *testing.T) {
	schema := feedSchema(t)
	st := NewStore(schema)
	const designers = 8
	const perDesigner = 120

	sub, err := st.Watch(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Collector: drains groups, checking contiguity and group integrity.
	// `collected` is collector-owned until collectorDone is received.
	var collected []Change
	var delivered atomicU64
	collectorDone := make(chan error, 1)
	go func() {
		nextLSN := uint64(1)
		for g := range sub.C() {
			if len(g) == 0 {
				collectorDone <- fmt.Errorf("empty group delivered")
				return
			}
			for _, c := range g {
				if c.LSN != nextLSN {
					collectorDone <- fmt.Errorf("gap: got LSN %d, want %d", c.LSN, nextLSN)
					return
				}
				if c.Group != g[0].LSN {
					collectorDone <- fmt.Errorf("torn group at LSN %d", c.LSN)
					return
				}
				nextLSN++
			}
			collected = append(collected, g...)
			delivered.Store(g[len(g)-1].LSN)
		}
		collectorDone <- nil
	}()

	var wg sync.WaitGroup
	for d := 0; d < designers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			var myCell OID
			for i := 0; i < perDesigner; i++ {
				switch i % 3 {
				case 0: // grouped checkin shape
					b := NewBatch()
					c := b.Create("Cell", map[string]Value{"name": S(fmt.Sprintf("c-%d-%d", d, i))})
					v := b.Create("Version", map[string]Value{"num": I(int64(i))})
					b.Link("hasVersion", c, v)
					created, err := st.Apply(b)
					if err != nil {
						t.Errorf("designer %d: %v", d, err)
						return
					}
					myCell = created[0]
				case 1: // single-op attribute traffic
					if err := st.Set(myCell, "rev", I(int64(i))); err != nil {
						t.Errorf("designer %d: %v", d, err)
						return
					}
				case 2: // occasional polling reader riding its own cursor
					if _, ok := st.Changes(st.FeedLSN()); !ok {
						t.Errorf("designer %d: cursor at watermark reported evicted", d)
						return
					}
				}
			}
		}(d)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Wait until the subscriber has drained everything, then stop it.
	final := st.FeedLSN()
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < final {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber stuck at %d of %d", delivered.Load(), final)
		}
		time.Sleep(time.Millisecond)
	}
	sub.Close()
	if err := <-collectorDone; err != nil {
		t.Fatal(err)
	}
	if sub.Lagged() {
		t.Fatal("subscriber lagged on an in-retention run")
	}
	if uint64(len(collected)) != final {
		t.Fatalf("subscriber delivered %d records, feed committed %d", len(collected), final)
	}

	// Exactly-once, in-order content check against a polled copy.
	polled, ok := st.Changes(0)
	if !ok {
		t.Fatal("full range evicted")
	}
	if len(polled) != len(collected) {
		t.Fatalf("polled %d records, subscribed %d", len(polled), len(collected))
	}
	seen := map[uint64]bool{}
	for i, c := range collected {
		if seen[c.LSN] {
			t.Fatalf("LSN %d delivered twice", c.LSN)
		}
		seen[c.LSN] = true
		if polled[i].LSN != c.LSN || polled[i].Kind != c.Kind {
			t.Fatalf("subscriber and poller disagree at index %d", i)
		}
	}

	// Replay fidelity: the collected stream rebuilds the exact store.
	if got, want := fingerprint(t, replayed(t, schema, collected)), fingerprint(t, st); got != want {
		t.Fatal("replayed store diverges from live store under concurrency")
	}
	// Every committed create appears exactly once.
	creates := 0
	for _, c := range collected {
		if c.Kind == ChangeCreate {
			creates++
		}
	}
	if want := st.Count(""); creates != want {
		t.Fatalf("%d create records for %d live objects", creates, want)
	}
}
