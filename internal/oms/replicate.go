package oms

import (
	"fmt"

	"repro/internal/obs"
)

// Follower-store surface: the two operations a replication layer needs to
// keep a second Store converged with a primary by consuming the primary's
// change feed (see internal/repl).
//
//   - ResetFromSnapshot installs a full base snapshot and rebases the
//     follower's own feed to the snapshot's LSN — the bootstrap step.
//   - ApplyReplicated applies a contiguous feed suffix and republishes it
//     into the follower's feed at the SAME LSNs — the catch-up/tail step.
//
// Because the follower's feed mirrors the primary's commit sequence, the
// follower is itself a full citizen: its FeedLSN is the replication
// position, local Watch consumers (tool notifiers, coupling sync, chained
// replicas) see the replicated history in commit order, differential
// saves anchor correctly, and a promoted follower continues the LSN
// sequence instead of restarting it.
//
// Contrast ReplayChanges (feed.go), the *persistence* replay: it applies
// records without republishing, so a store restored from disk starts a
// fresh history — exactly what Load wants and replication does not.

// ResetFromSnapshot atomically replaces the store's entire content with a
// base snapshot payload (the bytes Snapshot.EncodeJSON or Save produced)
// cut at feed position lsn. The swap happens with every stripe
// write-locked, so concurrent readers observe either the old state or the
// new one, never a mixture; the decode runs before any lock is taken.
// The store's feed is rebased to lsn: subscriptions whose cursor no
// longer attaches close with Lagged() true and resynchronize.
//
// It must not be called while a transaction is open (followers do not run
// transactions); that is rejected rather than silently corrupting the
// undo log.
func (st *Store) ResetFromSnapshot(data []byte, lsn uint64) error {
	tmp, err := DecodeSnapshot(data, st.schema)
	if err != nil {
		return fmt.Errorf("oms: reset from snapshot: %w", err)
	}
	if st.txOpen.Load() != 0 {
		return fmt.Errorf("oms: reset from snapshot: transaction open")
	}
	st.lockAll()
	for i := range st.stripes {
		st.stripes[i].objects = tmp.stripes[i].objects
		st.stripes[i].byClass = tmp.stripes[i].byClass
		st.stripes[i].relFrom = tmp.stripes[i].relFrom
	}
	st.allocMu.Lock()
	st.nextOID = tmp.nextOID
	st.allocMu.Unlock()
	st.feed.rebase(lsn)
	st.unlockAll()
	return nil
}

// ApplyReplicated applies a decoded change suffix (whole commit groups,
// as a primary's feed delivered them) and republishes the records into
// this store's feed at their original LSNs. The records must attach
// exactly at this store's committed watermark (FeedLSN()+1) and be
// contiguous; otherwise ErrFeedGap is returned before anything is
// applied and the caller resynchronizes.
//
// The whole suffix applies under every stripe's write lock, so no reader
// ever observes a torn group. A schema-validation failure mid-apply
// (possible only when the stream disagrees with the store state — a
// corrupt or misdirected stream) leaves the store partially mutated and
// is returned as a non-gap error: the caller must treat the store as
// poisoned and re-bootstrap via ResetFromSnapshot.
func (st *Store) ApplyReplicated(recs []Change) error {
	if len(recs) == 0 {
		return nil
	}
	defer st.metrics.applyReplicated.Since(obs.Now())
	st.lockAll()
	defer st.unlockAll()
	at := st.feed.lsn()
	if recs[0].LSN != at+1 {
		return fmt.Errorf("%w: records start at %d, store is at %d", ErrFeedGap, recs[0].LSN, at)
	}
	for i := range recs {
		if recs[i].LSN != recs[0].LSN+uint64(i) {
			return fmt.Errorf("%w: record %d follows %d", ErrFeedGap, recs[i].LSN, recs[0].LSN+uint64(i)-1)
		}
	}
	for _, c := range recs {
		if err := st.replayOneLocked(c); err != nil {
			return fmt.Errorf("oms: apply replicated lsn %d: %w", c.LSN, err)
		}
	}
	return st.feed.publishAt(recs)
}
