package oms

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

// Grouped operations.
//
// A Batch stages N mutations and Store.Apply executes them as one atomic
// group: the touched stripe set is computed up front, those stripe locks
// are acquired once in ascending order (the same order lockPair and
// lockAll use, so batches, single ops and transactions can never
// deadlock), every op runs under that one hold, and the first failing op
// rolls back everything the batch already applied. Callers therefore get
// two properties the single-op API cannot give them:
//
//   - all-or-nothing: a multi-step sequence (version create + link +
//     data blob + derivation link, the section 3.6 checkin shape) either
//     lands completely or leaves no trace — no orphaned objects, no
//     half-wired relationships;
//   - one lock round-trip: N ops pay one acquire/release of the touched
//     stripes instead of N, which is what makes the grouped checkin path
//     measurably faster under concurrent designers (BENCH_3.json).
//
// Objects created earlier in a batch are addressable by later ops through
// placeholder OIDs: Batch.Create returns a negative OID (-1 for the first
// staged create, -2 for the second, ...) which Apply resolves to the real
// allocation. Real OIDs are always positive, so the two can never collide.
//
// Batches compose with transactions: ops applied while a Begin/Commit/
// Rollback transaction is open hand their undo entries to that
// transaction's log after the batch succeeds (a failed batch contributes
// nothing — it already undid itself), so Rollback reverts applied batches
// exactly like single ops.

// batchKind enumerates the stageable operations.
type batchKind int

const (
	bCreate batchKind = iota
	bSet
	bLink
	bUnlink
	bDelete
	bCopyIn
)

// batchOp is one staged operation, packed tight — the ops slice is the
// builder's dominant allocation, so mutually-exclusive fields share a
// slot. s1 holds the class (bCreate), attribute name (bSet, bCopyIn) or
// relationship name (bLink, bUnlink); s2 the copy-in source path; oid is
// the op's target and doubles as the link source; OIDs may be
// placeholders.
type batchOp struct {
	kind  batchKind
	s1    string
	s2    string           // bCopyIn
	attrs map[string]Value // bCreate (private copies)
	val   Value            // bSet (private copy)
	oid   OID              // bSet, bDelete, bCopyIn; from of bLink/bUnlink
	to    OID              // bLink, bUnlink
	spill bool             // design-data op (CopyIn/CopyInBytes): blob may spill to the CAS
}

// Batch stages a group of mutations for Store.Apply. The zero value is
// ready to use. A Batch is not safe for concurrent use and is one-shot:
// once handed to Apply it must be discarded (Apply takes ownership of the
// staged values so it can install them without re-copying).
type Batch struct {
	ops     []batchOp
	creates int
	applied bool
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Len reports the number of staged operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse, retaining the ops slice's capacity —
// the concession to hot paths (the jcf checkin) that build one small
// batch per call and would otherwise pay the builder allocation every
// time; they pool Reset batches. Staged ops are zeroed so a pooled batch
// never pins attribute maps or design-data blobs from a previous use.
func (b *Batch) Reset() {
	clear(b.ops)
	b.ops = b.ops[:0]
	b.creates = 0
	b.applied = false
}

// add appends one staged op. batchOp is a wide struct, so the usual
// doubling-from-one append would copy every staged op twice for the
// typical 3-4 op batch; starting at a capacity that already fits the
// checkin shape (create + link + blob + derivation) keeps the builder to
// a single allocation on the hot path.
func (b *Batch) add(op batchOp) {
	if b.ops == nil {
		b.ops = make([]batchOp, 0, 4)
	}
	b.ops = append(b.ops, op)
}

// Create stages an object creation and returns a placeholder OID that
// later ops in the same batch may reference. Attribute values are copied
// at staging time, so the caller may reuse the map. All validation
// happens in Apply.
func (b *Batch) Create(class string, attrs map[string]Value) OID {
	cp := make(map[string]Value, len(attrs))
	for name, v := range attrs {
		cp[name] = v.clone()
	}
	b.add(batchOp{kind: bCreate, s1: class, attrs: cp})
	b.creates++
	return -OID(b.creates)
}

// CreateOwned is Create without the defensive copy: ownership of attrs
// (map and values) transfers to the batch, and Apply adopts the map as
// the new object's attribute storage outright. For hot paths that build
// the map fresh for this one call (the jcf checkin); the caller must not
// retain or mutate attrs afterwards.
func (b *Batch) CreateOwned(class string, attrs map[string]Value) OID {
	b.add(batchOp{kind: bCreate, s1: class, attrs: attrs})
	b.creates++
	return -OID(b.creates)
}

// Set stages an attribute assignment. The value is copied at staging time.
func (b *Batch) Set(oid OID, attr string, v Value) {
	b.add(batchOp{kind: bSet, oid: oid, s1: attr, val: v.clone()})
}

// Link stages a relationship creation.
func (b *Batch) Link(rel string, from, to OID) {
	b.add(batchOp{kind: bLink, s1: rel, oid: from, to: to})
}

// Unlink stages a relationship removal (a no-op if absent, like
// Store.Unlink).
func (b *Batch) Unlink(rel string, from, to OID) {
	b.add(batchOp{kind: bUnlink, s1: rel, oid: from, to: to})
}

// Delete stages an object deletion. A batch containing a Delete locks
// every stripe (deletion's reach is unbounded), like Store.Delete.
func (b *Batch) Delete(oid OID) {
	b.add(batchOp{kind: bDelete, oid: oid})
}

// CopyIn stages a file-system copy-in: the file at srcPath becomes the
// named blob attribute of oid. The file is read during Apply's staging
// phase, before any lock is taken — a read failure aborts the batch with
// nothing applied, and no stripe lock is ever held across disk I/O.
func (b *Batch) CopyIn(oid OID, attr, srcPath string) {
	b.add(batchOp{kind: bCopyIn, oid: oid, s1: attr, s2: srcPath, spill: true})
}

// CopyInBytes stages already-read design bytes as the named blob
// attribute of oid, taking ownership of data — the zero-copy sibling of
// CopyIn for callers that stage the file themselves before taking their
// own locks (the checkin path). The caller must not retain or mutate
// data afterwards; unlike Set, no defensive copy is made.
func (b *Batch) CopyInBytes(oid OID, attr string, data []byte) {
	b.add(batchOp{kind: bSet, oid: oid, s1: attr, val: Value{Kind: KindBlob, Blob: data}, spill: true})
}

// Apply executes the batch atomically and returns the real OIDs of its
// Create ops in staging order (created[0] is the object placeholder -1
// resolved to). On error nothing remains applied: every op that ran is
// undone, in reverse, before the stripe locks are released, so concurrent
// designers can never observe a partially-applied batch — and since the
// locks are held from first op to last, they never observe an
// intermediate state of a successful batch either.
//
// While a transaction is open, a successful batch registers its undo
// entries with the transaction, so Rollback reverts it as a unit.
func (st *Store) Apply(b *Batch) ([]OID, error) {
	if b == nil || len(b.ops) == 0 {
		return nil, nil
	}
	if b.applied {
		return nil, fmt.Errorf("oms: batch already applied")
	}
	b.applied = true
	// Whole-Apply latency, all five phases; the deferred Since runs after
	// unlock (it is registered before the locks are taken) and is atomics
	// only. A zero start (timing disabled) records nothing.
	defer st.metrics.applyLatency.Since(obs.Now())

	// Phase 1 — lock-free validation and staging. Everything that can fail
	// without looking at live objects fails here, before any lock: schema
	// checks, placeholder sanity, file reads for CopyIn.
	var staged map[int]Value // op index -> file bytes for bCopyIn; lazy
	createsSeen := 0
	checkRef := func(oid OID) error {
		if oid >= 0 {
			return nil
		}
		if idx := int(-oid) - 1; idx >= createsSeen {
			return fmt.Errorf("oms: placeholder %d references a create staged later in the batch (or another batch)", oid)
		}
		return nil
	}
	for i := range b.ops {
		op := &b.ops[i]
		switch op.kind {
		case bCreate:
			if err := st.validateCreate(op.s1, op.attrs); err != nil {
				return nil, err
			}
			createsSeen++
		case bSet:
			if err := checkRef(op.oid); err != nil {
				return nil, err
			}
		case bLink, bUnlink:
			if st.schema.rel(op.s1) == nil {
				return nil, fmt.Errorf("oms: unknown relationship %q", op.s1)
			}
			if err := checkRef(op.oid); err != nil {
				return nil, err
			}
			if err := checkRef(op.to); err != nil {
				return nil, err
			}
		case bDelete:
			if err := checkRef(op.oid); err != nil {
				return nil, err
			}
		case bCopyIn:
			if err := checkRef(op.oid); err != nil {
				return nil, err
			}
			data, err := os.ReadFile(op.s2)
			if err != nil {
				return nil, fmt.Errorf("oms: copy-in: %w", err)
			}
			if staged == nil {
				staged = make(map[int]Value)
			}
			staged[i] = Value{Kind: KindBlob, Blob: data}
		}
	}

	// Phase 1b — spill large design blobs to the content-addressed store,
	// still lock-free: the CAS write happens here, before any stripe lock,
	// and only the ~40-byte reference continues into the commit. Spilled
	// blobs stay pinned against the GC sweep until the batch has committed
	// (or failed — then the orphan is collectible, by design).
	var unpins []func()
	defer func() {
		for _, unpin := range unpins {
			unpin()
		}
	}()
	for i := range b.ops {
		op := &b.ops[i]
		if !op.spill {
			continue
		}
		v := op.val
		if op.kind == bCopyIn {
			v = staged[i]
		}
		if !st.shouldSpill(v) {
			continue
		}
		ref, unpin, err := st.spill(v)
		if err != nil {
			return nil, err
		}
		unpins = append(unpins, unpin)
		if op.kind == bCopyIn {
			staged[i] = ref
		} else {
			op.val = ref
		}
	}

	// Phase 2 — allocate the real OIDs for every staged create (allocMu is
	// never held together with a stripe lock). A failed batch leaves an
	// allocation gap; OIDs are never reused, so gaps are harmless.
	created := make([]OID, 0, b.creates)
	for i := 0; i < b.creates; i++ {
		created = append(created, st.allocOID())
	}
	res := func(oid OID) OID {
		if oid < 0 {
			return created[int(-oid)-1]
		}
		return oid
	}

	// Phase 3 — compute the touched stripe set and lock it once, in
	// ascending stripe order (consistent with lockPair/lockAll). A Delete
	// reaches arbitrary stripes through the victim's links, so its
	// presence widens the set to all stripes.
	var mask uint32
	needAll := false
	for _, op := range b.ops {
		switch op.kind {
		case bCreate:
			// resolved below via created; creates are indexed in order
		case bSet, bCopyIn:
			mask |= 1 << stripeIdx(res(op.oid))
		case bLink, bUnlink:
			mask |= 1 << stripeIdx(res(op.oid))
			mask |= 1 << stripeIdx(res(op.to))
		case bDelete:
			needAll = true
		}
	}
	for _, oid := range created {
		mask |= 1 << stripeIdx(oid)
	}
	if needAll {
		mask = 1<<numStripes - 1
	}
	wait := st.metrics.stripeSampler.Sample(stripeWaitStride)
	for i := 0; i < numStripes; i++ {
		if mask&(1<<i) != 0 {
			st.stripes[i].mu.Lock()
		}
	}
	st.metrics.stripeWait.Since(wait)
	unlock := func() {
		for i := numStripes - 1; i >= 0; i-- {
			if mask&(1<<i) != 0 {
				st.stripes[i].mu.Unlock()
			}
		}
	}

	// The transaction generation is sampled once, while the stripe locks
	// are held — the same discipline record() uses, so Begin's drain
	// barrier orders whole batches before or after a transaction, never
	// astride it.
	gen := st.txOpen.Load()

	// Phase 4 — execute. The first error rolls back every applied op (in
	// reverse) before the locks drop: all-or-nothing. Nothing is
	// published to the change feed until the whole batch has succeeded,
	// so a failed batch leaves no trace in the feed either.
	applieds := make([]applied, 0, len(b.ops))
	nextCreate := 0
	for i, op := range b.ops {
		var a applied
		var err error
		switch op.kind {
		case bCreate:
			a = st.insertLocked(created[nextCreate], op.s1, op.attrs)
			nextCreate++
		case bSet:
			a, err = st.setLockedU(res(op.oid), op.s1, op.val)
		case bCopyIn:
			a, err = st.setLockedU(res(op.oid), op.s1, staged[i])
		case bLink:
			a, err = st.linkLockedU(op.s1, res(op.oid), res(op.to))
		case bUnlink:
			a = st.unlinkLockedU(op.s1, res(op.oid), res(op.to))
		case bDelete:
			var as []applied
			as, err = st.deleteLockedU(res(op.oid))
			applieds = append(applieds, as...)
		}
		if err != nil {
			for j := len(applieds) - 1; j >= 0; j-- {
				applieds[j].undo(st)
			}
			unlock()
			return nil, fmt.Errorf("oms: apply op %d: %w", i, err)
		}
		if a.undo != nil {
			applieds = append(applieds, a)
		}
	}

	// Phase 5 — the batch is now permanent: publish every effect to the
	// change feed as ONE contiguous group (still under the stripe locks,
	// so no subscriber can ever observe a torn batch), then hand the undo
	// entries to the transaction we observed open, if it still is
	// (record()'s generation check, amortized over the whole batch).
	group := make([]Change, 0, len(applieds))
	for _, a := range applieds {
		group = append(group, a.change)
	}
	st.feed.publish(group)
	if gen != 0 {
		st.logMu.Lock()
		if st.tx != nil && st.tx.gen == gen {
			for _, a := range applieds {
				st.tx.undo = append(st.tx.undo, txEntry{fn: a.undo, comp: a.comp})
			}
		}
		st.logMu.Unlock()
	}
	unlock()
	return created, nil
}
