package oms

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Consistent-cut snapshots.
//
// A Snapshot is a point-in-time copy of the whole store taken under every
// stripe's read lock at once — the one moment all 32 stripes plus the OID
// allocator agree. Only object *headers* are copied inside that window:
// the class name, the attribute map and the flattened outgoing links.
// Blob bytes are shared with the live store, O(1) per blob, which is what
// keeps the cut brief on a blob-heavy database. Sharing is safe because
// blobs are immutable once stored: Set replaces the whole Value with a
// private clone (copy-on-write) and Get hands out clones, so the bytes a
// snapshot references can never change underneath it.
//
// Encoding and writing the snapshot happen entirely outside the locks, so
// concurrent designers stall only for the header copy — never for the
// JSON encode or the disk write. Compare Store.SaveStopTheWorld, the
// pre-snapshot path retained as the ablation baseline.

// snapObjHdr is one captured object header. attrs shares Value contents
// (including blob backing arrays) with the live store; links is a
// flattened, unsorted copy of the outgoing link sets.
type snapObjHdr struct {
	oid   OID
	class string
	attrs map[string]Value
	links map[string][]OID
}

// Snapshot is an immutable consistent cut of a Store. It is safe to
// encode from any goroutine while the originating store keeps mutating.
type Snapshot struct {
	nextOID OID
	lsn     uint64       // change-feed position of the cut (see LSN)
	objs    []snapObjHdr // sorted by OID
}

// Snapshot captures a consistent cut of the store. Every stripe is
// read-locked simultaneously (so no cross-stripe mutation can tear the
// cut) and nextOID is read *inside* that window: an object inserted
// before the cut was necessarily allocated before it, so every captured
// OID is < NextOID — Load never needs to patch the allocator up.
//
// allocMu is taken while the stripe locks are held; Create releases
// allocMu before touching any stripe, so the stripes→allocMu order is
// acyclic.
func (st *Store) Snapshot() *Snapshot {
	// Time the capture hold — how long every stripe stays read-locked —
	// not the sort below, which runs after the cut is released.
	hold := obs.Now()
	st.rlockAll()
	st.allocMu.Lock()
	sn := &Snapshot{nextOID: st.nextOID}
	st.allocMu.Unlock()
	// The feed position is read inside the cut too: every mutation
	// publishes while holding its stripe write locks, which the cut
	// excludes, so exactly the changes with LSN <= sn.lsn are visible in
	// the captured state — the anchor differential saves replay from.
	sn.lsn = st.feed.lsn()
	for i := range st.stripes {
		for _, obj := range st.stripes[i].objects {
			h := snapObjHdr{
				oid:   obj.oid,
				class: obj.class,
				attrs: make(map[string]Value, len(obj.attrs)),
			}
			for name, v := range obj.attrs {
				h.attrs[name] = v // blob bytes shared; immutable once stored
			}
			if len(obj.links) > 0 {
				h.links = make(map[string][]OID, len(obj.links))
				for rel, targets := range obj.links {
					ts := make([]OID, 0, len(targets))
					for to := range targets {
						ts = append(ts, to)
					}
					h.links[rel] = ts
				}
			}
			sn.objs = append(sn.objs, h)
		}
	}
	st.runlockAll()
	st.metrics.snapshotHold.Since(hold)
	// Deterministic order is established outside the cut — sorting is not
	// the writers' problem.
	sort.Slice(sn.objs, func(i, j int) bool { return sn.objs[i].oid < sn.objs[j].oid })
	return sn
}

// NextOID returns the allocator position captured by the cut.
func (sn *Snapshot) NextOID() OID { return sn.nextOID }

// LSN returns the change-feed position of the cut: every change with
// LSN <= this value is reflected in the snapshot, none after. It is the
// `since` anchor for Store.Changes/Store.Watch when building
// differential persistence on top of a base snapshot.
func (sn *Snapshot) LSN() uint64 { return sn.lsn }

// Objects returns the number of objects in the cut.
func (sn *Snapshot) Objects() int { return len(sn.objs) }

// EncodeJSON renders the snapshot in the Store wire format (the same
// format Load accepts). Deterministic: objects are ordered by OID,
// relationship names and targets are sorted, and JSON object keys are
// marshalled in sorted order.
func (sn *Snapshot) EncodeJSON() ([]byte, error) {
	snap := snapshot{NextOID: sn.nextOID}
	for _, h := range sn.objs {
		so := snapshotObj{OID: h.oid, Class: h.class, Attrs: make(map[string]snapValue, len(h.attrs))}
		for name, v := range h.attrs {
			so.Attrs[name] = snapValue{Kind: v.Kind, Str: v.Str, Int: v.Int, Bool: v.Bool, Blob: v.Blob}
		}
		snap.Objects = append(snap.Objects, so)
		rels := make([]string, 0, len(h.links))
		for rel := range h.links {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			ts := append([]OID(nil), h.links[rel]...)
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			for _, to := range ts {
				snap.Links = append(snap.Links, snapshotLink{Rel: rel, From: h.oid, To: to})
			}
		}
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return nil, fmt.Errorf("oms: encode snapshot: %w", err)
	}
	return data, nil
}
