package oms

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// snapshot is the on-disk form of a Store. It intentionally contains only
// plain data so the JSON round-trip is exact.
type snapshot struct {
	NextOID OID            `json:"next_oid"`
	Objects []snapshotObj  `json:"objects"`
	Links   []snapshotLink `json:"links"`
}

type snapshotObj struct {
	OID   OID                  `json:"oid"`
	Class string               `json:"class"`
	Attrs map[string]snapValue `json:"attrs"`
}

type snapValue struct {
	Kind Kind   `json:"kind"`
	Str  string `json:"str,omitempty"`
	Int  int64  `json:"int,omitempty"`
	Bool bool   `json:"bool,omitempty"`
	Blob []byte `json:"blob,omitempty"`
}

type snapshotLink struct {
	Rel  string `json:"rel"`
	From OID    `json:"from"`
	To   OID    `json:"to"`
}

// Save writes the full store content to path as JSON. The write is atomic:
// data goes to a temporary file first, then renamed into place. Every
// stripe is read-locked for the duration so the snapshot is consistent.
func (st *Store) Save(path string) error {
	st.allocMu.Lock()
	snap := snapshot{NextOID: st.nextOID}
	st.allocMu.Unlock()

	for i := range st.stripes {
		st.stripes[i].mu.RLock()
	}
	var objs []*object
	for i := range st.stripes {
		for _, obj := range st.stripes[i].objects {
			objs = append(objs, obj)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].oid < objs[j].oid })
	for _, obj := range objs {
		so := snapshotObj{OID: obj.oid, Class: obj.class, Attrs: map[string]snapValue{}}
		for name, v := range obj.attrs {
			// Copy the blob: the snapshot must not alias store internals
			// once the stripe locks are released.
			so.Attrs[name] = snapValue{Kind: v.Kind, Str: v.Str, Int: v.Int, Bool: v.Bool, Blob: append([]byte(nil), v.Blob...)}
		}
		snap.Objects = append(snap.Objects, so)
		rels := make([]string, 0, len(obj.links))
		for rel := range obj.links {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			for _, to := range sortedOIDs(obj.links[rel]) {
				snap.Links = append(snap.Links, snapshotLink{Rel: rel, From: obj.oid, To: to})
			}
		}
	}
	for i := len(st.stripes) - 1; i >= 0; i-- {
		st.stripes[i].mu.RUnlock()
	}

	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return fmt.Errorf("oms: save: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("oms: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("oms: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save into a fresh store enforcing schema.
// The snapshot is validated against the schema; unknown classes, attributes
// or relationships fail the load.
func Load(path string, schema *Schema) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("oms: load: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("oms: load %s: %w", path, err)
	}
	st := NewStore(schema)
	st.nextOID = snap.NextOID
	for _, so := range snap.Objects {
		cls := schema.class(so.Class)
		if cls == nil {
			return nil, fmt.Errorf("oms: load %s: unknown class %q", path, so.Class)
		}
		obj := newObject(so.OID, so.Class)
		for name, sv := range so.Attrs {
			def, ok := cls.attr(name)
			if !ok {
				return nil, fmt.Errorf("oms: load %s: class %q has no attribute %q", path, so.Class, name)
			}
			if def.Kind != sv.Kind {
				return nil, fmt.Errorf("oms: load %s: attribute %s.%s wants %s, got %s", path, so.Class, name, def.Kind, sv.Kind)
			}
			obj.attrs[name] = Value{Kind: sv.Kind, Str: sv.Str, Int: sv.Int, Bool: sv.Bool, Blob: sv.Blob}
		}
		for _, def := range cls.Attrs {
			if def.Required {
				if _, ok := so.Attrs[def.Name]; !ok {
					return nil, fmt.Errorf("oms: load %s: class %q requires attribute %q", path, so.Class, def.Name)
				}
			}
		}
		s := st.stripeOf(so.OID)
		s.objects[so.OID] = obj
		s.addClass(so.Class, so.OID)
		if so.OID >= st.nextOID {
			st.nextOID = so.OID + 1
		}
	}
	for _, l := range snap.Links {
		if schema.rel(l.Rel) == nil {
			return nil, fmt.Errorf("oms: load %s: unknown relationship %q", path, l.Rel)
		}
		if err := st.Link(l.Rel, l.From, l.To); err != nil {
			return nil, fmt.Errorf("oms: load %s: %w", path, err)
		}
	}
	return st, nil
}

// --- file-system staging ------------------------------------------------
//
// JCF encapsulation copies design data between the database and the UNIX
// file system ("the required data are copied to and from the database via
// the UNIX file system", section 2.1). CopyIn/CopyOut are that interface:
// an encapsulated tool only ever sees plain files.

// CopyIn reads the file at srcPath and stores its content as the named blob
// attribute of object oid. It returns the number of bytes copied.
func (st *Store) CopyIn(oid OID, attr, srcPath string) (int64, error) {
	data, err := os.ReadFile(srcPath)
	if err != nil {
		return 0, fmt.Errorf("oms: copy-in: %w", err)
	}
	if err := st.Set(oid, attr, Bytes(data)); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// CopyOut writes the named blob attribute of object oid to dstPath, creating
// parent directories as needed. It returns the number of bytes copied.
// Note that even read-only tool access requires a CopyOut — the cost the
// paper complains about in section 3.6.
func (st *Store) CopyOut(oid OID, attr, dstPath string) (int64, error) {
	v, ok, err := st.Get(oid, attr)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("oms: copy-out: object %d has no attribute %q", oid, attr)
	}
	if v.Kind != KindBlob {
		return 0, fmt.Errorf("oms: copy-out: attribute %q is %s, not blob", attr, v.Kind)
	}
	if err := os.MkdirAll(filepath.Dir(dstPath), 0o755); err != nil {
		return 0, fmt.Errorf("oms: copy-out: %w", err)
	}
	if err := os.WriteFile(dstPath, v.Blob, 0o644); err != nil {
		return 0, fmt.Errorf("oms: copy-out: %w", err)
	}
	return int64(len(v.Blob)), nil
}
