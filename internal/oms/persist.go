package oms

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/oms/backend"
)

// snapshot is the on-disk form of a Store. It intentionally contains only
// plain data so the JSON round-trip is exact.
type snapshot struct {
	NextOID OID            `json:"next_oid"`
	Objects []snapshotObj  `json:"objects"`
	Links   []snapshotLink `json:"links"`
}

type snapshotObj struct {
	OID   OID                  `json:"oid"`
	Class string               `json:"class"`
	Attrs map[string]snapValue `json:"attrs"`
}

type snapValue struct {
	Kind Kind   `json:"kind"`
	Str  string `json:"str,omitempty"`
	Int  int64  `json:"int,omitempty"`
	Bool bool   `json:"bool,omitempty"`
	Blob []byte `json:"blob,omitempty"`
}

type snapshotLink struct {
	Rel  string `json:"rel"`
	From OID    `json:"from"`
	To   OID    `json:"to"`
}

// Save writes the full store content to path as JSON. The write is atomic
// (temporary file + rename) and the content is a consistent cut taken via
// Snapshot: writers stall only for the brief header copy, never for the
// encode or the disk write.
func (st *Store) Save(path string) error {
	data, err := st.Snapshot().EncodeJSON()
	if err != nil {
		return fmt.Errorf("oms: save: %w", err)
	}
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("oms: save: %w", err)
	}
	return nil
}

// writeFileAtomic writes data to path via the backend layer's fsynced
// temp-file + atomic-rename helper, so a snapshot file is never torn
// and survives a power loss once Save returns.
func writeFileAtomic(path string, data []byte) error {
	return backend.AtomicWriteFile(filepath.Dir(path), filepath.Base(path), data)
}

// SnapshotStopTheWorld is the pre-PR-2 capture strategy, retained only
// as the ablation baseline for the writer-stall benchmark
// (BenchmarkE37SnapshotWriterStall / BENCH_2.json): every stripe is
// read-locked while the full content — blob bytes included — is deep-
// copied out, so writers stall for O(total blob bytes) instead of
// Snapshot's O(object headers). New code must use Snapshot.
//
// It also reproduces the allocation-window bug Snapshot fixes: nextOID
// is read before the stripe locks, so an object created in the gap can
// be captured with OID >= NextOID.
func (st *Store) SnapshotStopTheWorld() *Snapshot {
	st.allocMu.Lock()
	sn := &Snapshot{nextOID: st.nextOID}
	st.allocMu.Unlock()

	st.rlockAll()
	for i := range st.stripes {
		for _, obj := range st.stripes[i].objects {
			h := snapObjHdr{
				oid:   obj.oid,
				class: obj.class,
				attrs: make(map[string]Value, len(obj.attrs)),
			}
			for name, v := range obj.attrs {
				// The stop-the-world property: blob bytes are copied
				// while every stripe lock is held.
				h.attrs[name] = v.clone()
			}
			if len(obj.links) > 0 {
				h.links = make(map[string][]OID, len(obj.links))
				for rel, targets := range obj.links {
					ts := make([]OID, 0, len(targets))
					for to := range targets {
						ts = append(ts, to)
					}
					h.links[rel] = ts
				}
			}
			sn.objs = append(sn.objs, h)
		}
	}
	st.runlockAll()
	sort.Slice(sn.objs, func(i, j int) bool { return sn.objs[i].oid < sn.objs[j].oid })
	return sn
}

// SaveStopTheWorld is Save with the stop-the-world capture — the full
// pre-PR-2 persistence path, kept for the same ablation purpose as
// SnapshotStopTheWorld.
func (st *Store) SaveStopTheWorld(path string) error {
	data, err := st.SnapshotStopTheWorld().EncodeJSON()
	if err != nil {
		return fmt.Errorf("oms: save: %w", err)
	}
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("oms: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save into a fresh store enforcing schema.
// The snapshot is validated against the schema; unknown classes, attributes
// or relationships fail the load.
func Load(path string, schema *Schema) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("oms: load: %w", err)
	}
	st, err := DecodeSnapshot(data, schema)
	if err != nil {
		return nil, fmt.Errorf("oms: load %s: %w", path, err)
	}
	return st, nil
}

// DecodeSnapshot rebuilds a store from an encoded snapshot payload (the
// bytes Snapshot.EncodeJSON or Save produced), regardless of which
// storage backend held them. The payload is validated against the schema;
// unknown classes, attributes or relationships fail the decode.
func DecodeSnapshot(data []byte, schema *Schema) (*Store, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	st := NewStore(schema)
	st.nextOID = snap.NextOID
	for _, so := range snap.Objects {
		cls := schema.class(so.Class)
		if cls == nil {
			return nil, fmt.Errorf("decode snapshot: unknown class %q", so.Class)
		}
		obj := newObject(so.OID, so.Class)
		for name, sv := range so.Attrs {
			def, ok := cls.attr(name)
			if !ok {
				return nil, fmt.Errorf("decode snapshot: class %q has no attribute %q", so.Class, name)
			}
			if !kindCompatible(def.Kind, sv.Kind) {
				return nil, fmt.Errorf("decode snapshot: attribute %s.%s wants %s, got %s", so.Class, name, def.Kind, sv.Kind)
			}
			obj.attrs[name] = Value{Kind: sv.Kind, Str: sv.Str, Int: sv.Int, Bool: sv.Bool, Blob: sv.Blob}
		}
		for _, def := range cls.Attrs {
			if def.Required {
				if _, ok := so.Attrs[def.Name]; !ok {
					return nil, fmt.Errorf("decode snapshot: class %q requires attribute %q", so.Class, def.Name)
				}
			}
		}
		s := st.stripeOf(so.OID)
		s.objects[so.OID] = obj
		s.addClass(so.Class, so.OID)
		if so.OID >= st.nextOID {
			st.nextOID = so.OID + 1
		}
	}
	for _, l := range snap.Links {
		if schema.rel(l.Rel) == nil {
			return nil, fmt.Errorf("decode snapshot: unknown relationship %q", l.Rel)
		}
		if err := st.Link(l.Rel, l.From, l.To); err != nil {
			return nil, fmt.Errorf("decode snapshot: %w", err)
		}
	}
	return st, nil
}

// --- file-system staging ------------------------------------------------
//
// JCF encapsulation copies design data between the database and the UNIX
// file system ("the required data are copied to and from the database via
// the UNIX file system", section 2.1). CopyIn/CopyOut are that interface:
// an encapsulated tool only ever sees plain files.

// CopyIn reads the file at srcPath and stores its content as the named blob
// attribute of object oid. It returns the number of bytes copied. The
// freshly-read bytes are installed directly (setOwned) — one copy from the
// file system into the database, not two.
func (st *Store) CopyIn(oid OID, attr, srcPath string) (int64, error) {
	data, err := os.ReadFile(srcPath)
	if err != nil {
		return 0, fmt.Errorf("oms: copy-in: %w", err)
	}
	v := Value{Kind: KindBlob, Blob: data}
	if st.shouldSpill(v) {
		ref, unpin, err := st.spill(v)
		if err != nil {
			return 0, err
		}
		defer unpin()
		v = ref
	}
	if err := st.setOwned(oid, attr, v); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// CopyOut writes the named blob attribute of object oid to dstPath, creating
// parent directories as needed. It returns the number of bytes copied.
// Note that even read-only tool access requires a CopyOut — the cost the
// paper complains about in section 3.6.
func (st *Store) CopyOut(oid OID, attr, dstPath string) (int64, error) {
	v, ok, err := st.Get(oid, attr)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("oms: copy-out: object %d has no attribute %q", oid, attr)
	}
	data, err := st.resolveBlob(v)
	if err != nil {
		return 0, fmt.Errorf("oms: copy-out: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(dstPath), 0o755); err != nil {
		return 0, fmt.Errorf("oms: copy-out: %w", err)
	}
	if err := os.WriteFile(dstPath, data, 0o644); err != nil {
		return 0, fmt.Errorf("oms: copy-out: %w", err)
	}
	return int64(len(data)), nil
}
