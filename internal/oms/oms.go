// Package oms implements a small object-oriented database kernel modelled
// after the OMS database used by the JESSI-COMMON-Framework (JCF 3.0).
//
// OMS stores typed objects. Every object belongs to a class declared in a
// Schema; a class defines the attributes an object may carry and the binary
// relationship types it may participate in. The kernel provides:
//
//   - schema definition (classes, attributes, relationship types with
//     cardinality constraints),
//   - object creation/deletion and attribute access,
//   - binary relationships between objects with cardinality checking,
//   - transactions with rollback (an undo log per transaction),
//   - persistence of the whole store to a JSON snapshot file, and
//   - blob storage with file-system staging (CopyIn/CopyOut), mirroring the
//     JCF behaviour that encapsulated tools never touch database internals
//     but exchange design data through the UNIX file system.
//
// The paper (section 2.1) stresses two properties this package reproduces
// faithfully: metadata and design data live in one common database, and
// "direct access to the internal structure of the stored data by an
// appropriate interface is not possible" — callers get copies, never
// internal references.
//
// # Concurrency
//
// The store is the shared kernel that many concurrent designers hit at
// once (section 3.1), so it is lock-striped rather than globally locked:
// objects are sharded across numStripes stripes keyed by OID, each with
// its own RWMutex, so designers touching disjoint objects never contend.
// Secondary indexes (per class and per relationship type) let All /
// Count / FindByAttr / Related visit only relevant objects instead of
// scanning the whole object map.
//
// The secondary indexes live inside the stripes, keyed by the same OID
// hash, so index maintenance happens under the stripe lock the mutation
// already holds — no extra global lock on the write path.
//
// Internal lock ordering (never acquire in any other order):
//
//  1. stripe mutexes, ascending stripe index (lockPair / lockAll)
//  2. logMu (transaction log) — leaf; only taken while a transaction is
//     open (txOpen fast path); Rollback detaches the log under logMu,
//     then replays the undo entries in one atomic step with every stripe
//     write-locked
//  3. feedMu (the change feed ring, see feed.go) — leaf like logMu:
//     every committed mutation publishes its sequenced change records
//     while still holding its stripe write locks, which is what makes
//     the feed's LSN order a valid serialization of store history
//
// allocMu (OID allocation) and the stat counters (atomics) stand alone,
// with one exception: Snapshot reads nextOID under allocMu while holding
// every stripe read lock (the consistent cut). That nests stripes →
// allocMu; Create never holds allocMu and a stripe lock at the same
// time, so the order stays acyclic.
//
// Blob values are immutable once stored: Set installs a private clone
// (copy-on-write) and Get returns clones, so a Snapshot may share blob
// backing arrays with the live store without copying them.
package oms

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/oms/blobstore"
)

// OID identifies an object inside one Store. OIDs are never reused.
type OID int64

// InvalidOID is the zero OID; no object ever has it.
const InvalidOID OID = 0

// Kind enumerates the attribute value types OMS supports.
type Kind int

// Attribute kinds.
const (
	KindString Kind = iota
	KindInt
	KindBool
	KindBlob    // arbitrary bytes, used for staged design data
	KindBlobRef // content-addressed reference to a blob (hex digest + size)
)

// String returns the OTO-D style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindBlob:
		return "blob"
	case KindBlobRef:
		return "blobref"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a single attribute value. Exactly one field is meaningful,
// selected by Kind — except KindBlobRef, which reuses Str for the hex
// sha256 digest and Int for the blob size, so a reference costs nothing
// beyond the struct every value already pays, and every existing
// snapshot/feed encoding carries it unchanged.
type Value struct {
	Kind Kind
	Str  string
	Int  int64
	Bool bool
	Blob []byte
}

// S returns a string Value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I returns an int Value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// B returns a bool Value.
func B(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Bytes returns a blob Value holding a private copy of p.
func Bytes(p []byte) Value {
	cp := make([]byte, len(p))
	copy(cp, p)
	return Value{Kind: KindBlob, Blob: cp}
}

// BlobRef returns a content-addressed reference Value for a blob in the
// attached blobstore. A ref may be stored wherever the schema declares
// KindBlob — see kindCompatible.
func BlobRef(r blobstore.Ref) Value {
	return Value{Kind: KindBlobRef, Str: r.Hex(), Int: r.Size}
}

// AsBlobRef decodes a KindBlobRef value back into a blobstore.Ref.
func (v Value) AsBlobRef() (blobstore.Ref, error) {
	if v.Kind != KindBlobRef {
		return blobstore.Ref{}, fmt.Errorf("oms: %s value is not a blob ref", v.Kind)
	}
	return blobstore.ParseHexRef(v.Str, v.Int)
}

// kindCompatible reports whether a value of kind got may be stored in an
// attribute declared as want: an exact match, or a content-addressed
// reference standing in for a declared blob. The schema never declares
// KindBlobRef — it is a storage representation of blob data, not a
// distinct modeling type.
func kindCompatible(want, got Kind) bool {
	return want == got || (want == KindBlob && got == KindBlobRef)
}

// clone returns a deep copy of v so callers can never alias store internals.
func (v Value) clone() Value {
	if v.Kind == KindBlob {
		return Bytes(v.Blob)
	}
	return v
}

// Equal reports whether two values have the same kind and content.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == w.Str
	case KindInt:
		return v.Int == w.Int
	case KindBool:
		return v.Bool == w.Bool
	case KindBlob:
		if len(v.Blob) != len(w.Blob) {
			return false
		}
		for i := range v.Blob {
			if v.Blob[i] != w.Blob[i] {
				return false
			}
		}
		return true
	case KindBlobRef:
		return v.Str == w.Str && v.Int == w.Int
	}
	return false
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	case KindBlob:
		return fmt.Sprintf("blob[%d]", len(v.Blob))
	case KindBlobRef:
		digest := v.Str
		if len(digest) > 12 {
			digest = digest[:12]
		}
		return fmt.Sprintf("blobref[%d @%s]", v.Int, digest)
	}
	return "?"
}

// AttrDef declares one attribute of a class.
type AttrDef struct {
	Name     string
	Kind     Kind
	Required bool
}

// Cardinality constrains how many links of a relationship type an object may
// have on one side.
type Cardinality int

// Cardinalities. One means at most a single link on that side; Many is
// unbounded.
const (
	One Cardinality = iota
	Many
)

// String returns "1" or "N".
func (c Cardinality) String() string {
	if c == One {
		return "1"
	}
	return "N"
}

// RelDef declares a directed binary relationship type between two classes.
// From/To name classes; FromCard constrains how many links a single target
// object may receive, ToCard how many links a single source object may hold.
// (So ToCard==One means "each From object points to at most one To object",
// matching the usual crow's-foot reading From —— To.)
type RelDef struct {
	Name     string
	From, To string // class names
	FromCard Cardinality
	ToCard   Cardinality
}

// Class declares an object type.
type Class struct {
	Name  string
	Attrs []AttrDef
}

func (c *Class) attr(name string) (AttrDef, bool) {
	for _, a := range c.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrDef{}, false
}

// Schema is the set of classes and relationship types a Store enforces.
// A Schema is immutable once handed to NewStore.
type Schema struct {
	classes map[string]*Class
	rels    map[string]*RelDef
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{classes: map[string]*Class{}, rels: map[string]*RelDef{}}
}

// AddClass registers a class. It returns an error if the name is already
// taken or an attribute is duplicated.
func (s *Schema) AddClass(name string, attrs ...AttrDef) error {
	if name == "" {
		return fmt.Errorf("oms: empty class name")
	}
	if _, dup := s.classes[name]; dup {
		return fmt.Errorf("oms: duplicate class %q", name)
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if a.Name == "" {
			return fmt.Errorf("oms: class %q has attribute with empty name", name)
		}
		if seen[a.Name] {
			return fmt.Errorf("oms: class %q duplicates attribute %q", name, a.Name)
		}
		seen[a.Name] = true
	}
	s.classes[name] = &Class{Name: name, Attrs: append([]AttrDef(nil), attrs...)}
	return nil
}

// AddRel registers a relationship type. Both endpoint classes must exist.
func (s *Schema) AddRel(def RelDef) error {
	if def.Name == "" {
		return fmt.Errorf("oms: empty relationship name")
	}
	if _, dup := s.rels[def.Name]; dup {
		return fmt.Errorf("oms: duplicate relationship %q", def.Name)
	}
	if _, ok := s.classes[def.From]; !ok {
		return fmt.Errorf("oms: relationship %q: unknown class %q", def.Name, def.From)
	}
	if _, ok := s.classes[def.To]; !ok {
		return fmt.Errorf("oms: relationship %q: unknown class %q", def.Name, def.To)
	}
	cp := def
	s.rels[def.Name] = &cp
	return nil
}

// class returns the live class declaration for internal schema checks.
func (s *Schema) class(name string) *Class { return s.classes[name] }

// rel returns the live relationship declaration for internal checks.
func (s *Schema) rel(name string) *RelDef { return s.rels[name] }

// Class returns a copy of the class declaration, or nil. Callers get a
// private copy — mutating the result never changes the schema.
func (s *Schema) Class(name string) *Class {
	c, ok := s.classes[name]
	if !ok {
		return nil
	}
	return &Class{Name: c.Name, Attrs: append([]AttrDef(nil), c.Attrs...)}
}

// Rel returns a copy of the relationship declaration, or nil.
func (s *Schema) Rel(name string) *RelDef {
	r, ok := s.rels[name]
	if !ok {
		return nil
	}
	cp := *r
	return &cp
}

// Classes returns all class names, sorted.
func (s *Schema) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for n := range s.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Rels returns all relationship names, sorted.
func (s *Schema) Rels() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// object is the internal representation; never escapes the package.
type object struct {
	oid   OID
	class string
	attrs map[string]Value
	// links[relName] is the set of OIDs this object points to (as From side).
	links map[string]map[OID]bool
	// backlinks[relName] is the set of OIDs pointing at this object.
	backlinks map[string]map[OID]bool
}

func newObject(oid OID, class string) *object {
	return &object{
		oid:       oid,
		class:     class,
		attrs:     map[string]Value{},
		links:     map[string]map[OID]bool{},
		backlinks: map[string]map[OID]bool{},
	}
}

// stripeShift sets the shard count of the object map: numStripes = 2^5 =
// 32 keeps far more stripes than the hardware has cores, which is what
// makes disjoint-object traffic contention-free. The stripe hash derives
// from stripeShift so the two can never drift apart.
const (
	stripeShift = 5
	numStripes  = 1 << stripeShift
)

// stripe is one shard of the object map with its own lock. The secondary
// indexes are sharded the same way: a stripe indexes exactly the objects
// it stores, so every index update rides the stripe lock the mutation
// already holds.
type stripe struct {
	mu      sync.RWMutex
	objects map[OID]*object
	// byClass indexes this stripe's live objects by class name.
	byClass map[string]map[OID]struct{}
	// relFrom indexes, per relationship type, this stripe's objects that
	// currently hold at least one outgoing link of that type.
	relFrom map[string]map[OID]struct{}
}

// addClass/delClass/addRelFrom/delRelFrom maintain the stripe-local
// indexes; the caller holds s.mu for writing.

func (s *stripe) addClass(class string, oid OID) {
	set := s.byClass[class]
	if set == nil {
		set = map[OID]struct{}{}
		s.byClass[class] = set
	}
	set[oid] = struct{}{}
}

func (s *stripe) delClass(class string, oid OID) {
	delete(s.byClass[class], oid)
}

func (s *stripe) addRelFrom(rel string, oid OID) {
	set := s.relFrom[rel]
	if set == nil {
		set = map[OID]struct{}{}
		s.relFrom[rel] = set
	}
	set[oid] = struct{}{}
}

func (s *stripe) delRelFrom(rel string, oid OID) {
	delete(s.relFrom[rel], oid)
}

// Store is a live OMS database instance. All methods are safe for concurrent
// use.
type Store struct {
	schema  *Schema
	stripes [numStripes]stripe

	// feed is the sequenced change log every committed mutation
	// publishes into (see feed.go).
	feed *feed

	// allocMu guards OID allocation only.
	allocMu sync.Mutex
	nextOID OID

	// logMu guards the transaction pointer and its undo log. It is a leaf
	// lock: record() may take it while stripe locks are held, but nothing
	// acquires stripes while holding it. txOpen holds the generation of
	// the open transaction (0 when none), so the no-transaction fast path
	// of record() is a single atomic load instead of a global mutex on
	// every mutation, and a mutation can never append its undo entry to a
	// *different* transaction's log than the one it observed open.
	logMu  sync.Mutex
	tx     *txLog // non-nil while a transaction is open
	txGen  uint64 // guarded by logMu; last generation handed out
	txOpen atomic.Uint64

	// blobs is the optional content-addressed store large blob values
	// spill into; spillAt is the threshold in bytes (see blobref.go).
	// Both are set once at wire-up, before the store is shared.
	blobs   *blobstore.Store
	spillAt int

	// stats for the performance experiments (section 3.6). Blob bytes are
	// counted logically (what callers hand in/out); statBlobPhys counts
	// only bytes written inline — the CAS counts its own physical writes.
	// obs.Counter cells so RegisterMetrics can expose the same cells the
	// Stats() view reads (see metrics.go).
	statOps      obs.Counter
	statBlobIn   obs.Counter // logical bytes copied into the database
	statBlobOut  obs.Counter // logical bytes copied out of the database
	statBlobPhys obs.Counter // bytes physically stored inline
	statCommits  obs.Counter
	statRollback obs.Counter

	// metrics holds the store's latency instruments (see metrics.go).
	metrics storeMetrics
}

// NewStore returns an empty store enforcing schema.
func NewStore(schema *Schema) *Store {
	st := &Store{
		schema:  schema,
		nextOID: 1,
		feed:    newFeed(),
	}
	for i := range st.stripes {
		st.stripes[i].objects = map[OID]*object{}
		st.stripes[i].byClass = map[string]map[OID]struct{}{}
		st.stripes[i].relFrom = map[string]map[OID]struct{}{}
	}
	return st
}

// Schema returns the schema the store enforces.
func (st *Store) Schema() *Schema { return st.schema }

// Stats reports cumulative operation counters (ops, logical blob bytes
// in, logical blob bytes out). Used by the section 3.6 experiments; the
// logical/physical split behind the dedup ratio is BlobStatsNow.
func (st *Store) Stats() (ops, blobIn, blobOut int64) {
	return st.statOps.Load(), st.statBlobIn.Load(), st.statBlobOut.Load()
}

// --- striping ---------------------------------------------------------

// stripeIdx maps an OID onto its stripe (Fibonacci hashing so sequential
// OIDs spread across stripes instead of clustering): the top stripeShift
// bits of the hash select among the numStripes stripes.
func stripeIdx(oid OID) int {
	return int((uint64(oid) * 0x9E3779B97F4A7C15) >> (64 - stripeShift))
}

func (st *Store) stripeOf(oid OID) *stripe { return &st.stripes[stripeIdx(oid)] }

// lockPair write-locks the stripes of two OIDs in ascending stripe order
// (once when they collide) and returns the matching unlock. Acquisition
// wall time feeds the sampled stripe-wait histogram (a zero start — the
// off-stride and disabled cases — records nothing).
func (st *Store) lockPair(a, b OID) func() {
	wait := st.metrics.stripeSampler.Sample(stripeWaitStride)
	i, j := stripeIdx(a), stripeIdx(b)
	if i == j {
		s := &st.stripes[i]
		s.mu.Lock()
		st.metrics.stripeWait.Since(wait)
		return s.mu.Unlock
	}
	if i > j {
		i, j = j, i
	}
	si, sj := &st.stripes[i], &st.stripes[j]
	si.mu.Lock()
	sj.mu.Lock()
	st.metrics.stripeWait.Since(wait)
	return func() { sj.mu.Unlock(); si.mu.Unlock() }
}

// lockAll write-locks every stripe in ascending order. Used by the cold
// multi-object paths (Delete and its rollback).
func (st *Store) lockAll() {
	for i := range st.stripes {
		st.stripes[i].mu.Lock()
	}
}

func (st *Store) unlockAll() {
	for i := len(st.stripes) - 1; i >= 0; i-- {
		st.stripes[i].mu.Unlock()
	}
}

// rlockAll read-locks every stripe in ascending order — the consistent-
// cut hold of the snapshot capture paths. Pairs with runlockAll.
func (st *Store) rlockAll() {
	for i := range st.stripes {
		st.stripes[i].mu.RLock()
	}
}

func (st *Store) runlockAll() {
	for i := len(st.stripes) - 1; i >= 0; i-- {
		st.stripes[i].mu.RUnlock()
	}
}

// forEachStripeRLocked visits every stripe under its read lock — the
// shared scaffolding of all gather-style queries.
func (st *Store) forEachStripeRLocked(fn func(s *stripe)) {
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.RLock()
		fn(s)
		s.mu.RUnlock()
	}
}

// classOIDs gathers the class-index entries of every stripe, sorted.
func (st *Store) classOIDs(class string) []OID {
	var out []OID
	st.forEachStripeRLocked(func(s *stripe) {
		for oid := range s.byClass[class] {
			out = append(out, oid)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- transactions -----------------------------------------------------

type undoFn func(st *Store)

// applied describes one applied primitive mutation: the feed record it
// publishes, the undo that reverts it, and the compensating record the
// undo publishes if it runs during a transaction rollback. A no-op
// (idempotent re-link, absent unlink) has a nil undo and publishes
// nothing.
type applied struct {
	change Change
	comp   Change
	undo   undoFn
}

// txEntry is one undo-log slot: the revert closure plus the feed record
// that announces the revert.
type txEntry struct {
	fn   undoFn
	comp Change
}

type txLog struct {
	gen  uint64 // the txOpen generation this log belongs to
	undo []txEntry
}

// Begin opens a transaction. Only one transaction may be open at a time;
// nested Begin is an error. Operations performed while a transaction is open
// are rolled back by Rollback.
func (st *Store) Begin() error {
	st.logMu.Lock()
	if st.tx != nil {
		st.logMu.Unlock()
		return fmt.Errorf("oms: transaction already open")
	}
	st.txGen++
	st.tx = &txLog{gen: st.txGen}
	st.txOpen.Store(st.txGen)
	st.logMu.Unlock()
	// Barrier: every mutation calls record() while still holding its
	// stripe locks, so cycling through all stripes here (after releasing
	// logMu — logMu sits below the stripes in the lock order) guarantees
	// that in-flight mutations have consulted txOpen and drained, and any
	// operation starting after Begin returns observes txOpen true. Without
	// this, a mutation racing Begin could slip past the undo log.
	st.lockAll()
	st.unlockAll()
	return nil
}

// Commit closes the open transaction, keeping all changes.
func (st *Store) Commit() error {
	st.logMu.Lock()
	defer st.logMu.Unlock()
	if st.tx == nil {
		return fmt.Errorf("oms: no open transaction")
	}
	st.tx = nil
	st.txOpen.Store(0)
	st.statCommits.Add(1)
	return nil
}

// Rollback undoes every operation performed since Begin. Every stripe is
// write-locked FIRST (the stripes-then-logMu order every mutation also
// uses), then the log is detached and replayed in place, so the whole
// rollback is one atomic step: mutations that completed while the
// transaction was open are undone, concurrent designers never observe a
// half-rolled-back store, and a write acknowledged after the transaction
// closed can never be reverted.
//
// The feed records the transaction's operations published are not
// rewritten; instead the rollback publishes their compensating records
// (in replay order) as ONE commit group, so feed consumers replaying
// history land on the rolled-back state without any special handling.
func (st *Store) Rollback() error {
	st.lockAll()
	st.logMu.Lock()
	if st.tx == nil {
		st.logMu.Unlock()
		st.unlockAll()
		return fmt.Errorf("oms: no open transaction")
	}
	log := st.tx
	st.tx = nil // undo functions run outside the tx
	st.txOpen.Store(0)
	st.logMu.Unlock()
	comps := make([]Change, 0, len(log.undo))
	for i := len(log.undo) - 1; i >= 0; i-- {
		log.undo[i].fn(st)
		comps = append(comps, log.undo[i].comp)
	}
	st.feed.publish(comps)
	st.unlockAll()
	st.statRollback.Add(1)
	return nil
}

// InTx reports whether a transaction is open.
func (st *Store) InTx() bool {
	st.logMu.Lock()
	defer st.logMu.Unlock()
	return st.tx != nil
}

// record appends an undo entry when a transaction is open. The common
// no-transaction case is a single atomic load — mutations from concurrent
// designers never serialize on the log. The generation check ensures the
// entry lands only in the log of the very transaction the mutation saw
// open: if that transaction closed (and even if a new one opened) in the
// meantime, the entry is dropped rather than corrupting a later log.
func (st *Store) record(a applied) {
	if a.undo == nil {
		return
	}
	gen := st.txOpen.Load()
	if gen == 0 {
		return
	}
	st.logMu.Lock()
	if st.tx != nil && st.tx.gen == gen {
		st.tx.undo = append(st.tx.undo, txEntry{fn: a.undo, comp: a.comp})
	}
	st.logMu.Unlock()
}

// commitApplied publishes a successful single-op mutation to the feed
// and hands its undo to an open transaction. The caller still holds the
// op's stripe write locks. No-ops (nil undo) publish nothing.
func (st *Store) commitApplied(a applied) {
	if a.undo == nil {
		return
	}
	st.feed.publish([]Change{a.change})
	st.record(a)
}

// --- object lifecycle -------------------------------------------------

// validateCreate checks class and attribute values against the schema —
// the lock-free half of Create, shared with Apply's validation phase.
func (st *Store) validateCreate(class string, attrs map[string]Value) error {
	cls := st.schema.class(class)
	if cls == nil {
		return fmt.Errorf("oms: unknown class %q", class)
	}
	for name, v := range attrs {
		def, ok := cls.attr(name)
		if !ok {
			return fmt.Errorf("oms: class %q has no attribute %q", class, name)
		}
		if !kindCompatible(def.Kind, v.Kind) {
			return fmt.Errorf("oms: attribute %s.%s wants %s, got %s", class, name, def.Kind, v.Kind)
		}
	}
	for _, def := range cls.Attrs {
		if def.Required {
			if _, ok := attrs[def.Name]; !ok {
				return fmt.Errorf("oms: class %q requires attribute %q", class, def.Name)
			}
		}
	}
	return nil
}

// allocOID hands out the next OID. Never called with a stripe lock held,
// keeping the stripes → allocMu order (Snapshot's cut) acyclic.
func (st *Store) allocOID() OID {
	st.allocMu.Lock()
	oid := st.nextOID
	st.nextOID++
	st.allocMu.Unlock()
	return oid
}

// insertLocked installs a validated object. The caller holds oid's stripe
// write lock and hands over ownership of attrs (values must already be
// private copies) — the map is adopted as the object's attribute map, not
// copied. Returns the applied record; the caller decides whether its
// undo goes to the transaction log (single ops) or a batch undo list
// (Apply), and publishes its change to the feed on commit. The change
// record carries a private copy of the attribute map (Values shared —
// they are immutable), so later Sets never mutate history.
func (st *Store) insertLocked(oid OID, class string, attrs map[string]Value) applied {
	obj := newObject(oid, class)
	var recAttrs map[string]Value
	if attrs != nil {
		obj.attrs = attrs
		recAttrs = make(map[string]Value, len(attrs))
		for name, v := range attrs {
			recAttrs[name] = v
			st.noteBlobIn(v)
		}
	}
	s := st.stripeOf(oid)
	s.objects[oid] = obj
	s.addClass(class, oid)
	st.statOps.Add(1)
	return applied{
		change: Change{Kind: ChangeCreate, OID: oid, Class: class, Attrs: recAttrs},
		comp:   Change{Kind: ChangeDelete, OID: oid, Class: class},
		undo:   func(u *Store) { u.undoCreate(oid, class) },
	}
}

// Create allocates a new object of the given class with the given attribute
// values. Required attributes must be present; kinds must match the schema.
func (st *Store) Create(class string, attrs map[string]Value) (OID, error) {
	if err := st.validateCreate(class, attrs); err != nil {
		return InvalidOID, err
	}
	oid := st.allocOID()
	cp := make(map[string]Value, len(attrs))
	for name, v := range attrs {
		cp[name] = v.clone()
	}
	s := st.stripeOf(oid)
	s.mu.Lock()
	st.commitApplied(st.insertLocked(oid, class, cp))
	s.mu.Unlock()
	return oid, nil
}

// The undo helpers below run during Rollback's replay, which holds every
// stripe write-locked — they must not lock anything themselves.

func (st *Store) undoCreate(oid OID, class string) {
	s := st.stripeOf(oid)
	delete(s.objects, oid)
	s.delClass(class, oid)
}

// Delete removes an object and all relationships it participates in. It is
// the one multi-object operation whose reach is unbounded (links may point
// anywhere), so it takes every stripe — correct and simple; deletion is not
// on the designers' hot path. The cascade (every link detach plus the
// removal) publishes as one feed group.
func (st *Store) Delete(oid OID) error {
	st.lockAll()
	defer st.unlockAll()
	as, err := st.deleteLockedU(oid)
	if err != nil {
		return err
	}
	group := make([]Change, 0, len(as))
	for _, a := range as {
		group = append(group, a.change)
	}
	st.feed.publish(group)
	for _, a := range as {
		st.record(a)
	}
	return nil
}

// deleteLockedU is Delete's body: detach every link (both directions),
// then remove the object. The caller holds every stripe write lock. The
// returned entries are ordered for reverse undo replay (links re-attach
// after the object is re-inserted) and forward feed publication (the
// unlinks precede the delete record).
func (st *Store) deleteLockedU(oid OID) ([]applied, error) {
	s := st.stripeOf(oid)
	obj, ok := s.objects[oid]
	if !ok {
		return nil, fmt.Errorf("oms: no object %d", oid)
	}
	var as []applied
	for rel, targets := range obj.links {
		for to := range targets {
			if a := st.unlinkLockedU(rel, oid, to); a.undo != nil {
				as = append(as, a)
			}
		}
	}
	for rel, sources := range obj.backlinks {
		for from := range sources {
			if a := st.unlinkLockedU(rel, from, oid); a.undo != nil {
				as = append(as, a)
			}
		}
	}
	delete(s.objects, oid)
	s.delClass(obj.class, oid)
	st.statOps.Add(1)
	// The compensating create restores the object's attributes; its
	// links are restored by the preceding unlink compensations.
	recAttrs := make(map[string]Value, len(obj.attrs))
	for name, v := range obj.attrs {
		recAttrs[name] = v
	}
	as = append(as, applied{
		change: Change{Kind: ChangeDelete, OID: oid, Class: obj.class},
		comp:   Change{Kind: ChangeCreate, OID: oid, Class: obj.class, Attrs: recAttrs},
		undo:   func(u *Store) { u.undoDelete(oid, obj) },
	})
	return as, nil
}

func (st *Store) undoDelete(oid OID, obj *object) {
	s := st.stripeOf(oid)
	s.objects[oid] = obj
	s.addClass(obj.class, oid)
}

// Exists reports whether oid names a live object.
func (st *Store) Exists(oid OID) bool {
	s := st.stripeOf(oid)
	s.mu.RLock()
	_, ok := s.objects[oid]
	s.mu.RUnlock()
	return ok
}

// ClassOf returns the class of an object.
func (st *Store) ClassOf(oid OID) (string, error) {
	s := st.stripeOf(oid)
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[oid]
	if !ok {
		return "", fmt.Errorf("oms: no object %d", oid)
	}
	return obj.class, nil
}

// --- attributes ---------------------------------------------------------

// Set assigns an attribute value, checked against the schema.
func (st *Store) Set(oid OID, name string, v Value) error {
	return st.setOwned(oid, name, v.clone())
}

// setOwned assigns an attribute value whose ownership transfers to the
// store (the caller must not retain or mutate v's backing storage). It is
// what lets CopyIn install freshly-read file bytes with a single copy.
func (st *Store) setOwned(oid OID, name string, v Value) error {
	s := st.stripeOf(oid)
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := st.setLockedU(oid, name, v)
	if err != nil {
		return err
	}
	st.commitApplied(a)
	return nil
}

// setLockedU is Set's body. The caller holds oid's stripe write lock and
// hands over ownership of v (already a private copy). Sharing v in the
// change record is safe: Values are immutable once stored (Set replaces
// them wholesale).
func (st *Store) setLockedU(oid OID, name string, v Value) (applied, error) {
	obj, ok := st.stripeOf(oid).objects[oid]
	if !ok {
		return applied{}, fmt.Errorf("oms: no object %d", oid)
	}
	def, ok := st.schema.class(obj.class).attr(name)
	if !ok {
		return applied{}, fmt.Errorf("oms: class %q has no attribute %q", obj.class, name)
	}
	if !kindCompatible(def.Kind, v.Kind) {
		return applied{}, fmt.Errorf("oms: attribute %s.%s wants %s, got %s", obj.class, name, def.Kind, v.Kind)
	}
	old, had := obj.attrs[name]
	obj.attrs[name] = v
	st.noteBlobIn(v)
	st.statOps.Add(1)
	return applied{
		change: Change{Kind: ChangeSet, OID: oid, Class: obj.class, Attr: name, Value: v},
		comp:   Change{Kind: ChangeSet, OID: oid, Class: obj.class, Attr: name, Value: old, Cleared: !had},
		undo:   func(u *Store) { u.undoSet(oid, name, old, had) },
	}, nil
}

func (st *Store) undoSet(oid OID, name string, old Value, had bool) {
	if o, ok := st.stripeOf(oid).objects[oid]; ok {
		if had {
			o.attrs[name] = old
		} else {
			delete(o.attrs, name)
		}
	}
}

// Get returns a copy of an attribute value. The bool reports presence.
func (st *Store) Get(oid OID, name string) (Value, bool, error) {
	s := st.stripeOf(oid)
	s.mu.RLock()
	obj, ok := s.objects[oid]
	if !ok {
		s.mu.RUnlock()
		return Value{}, false, fmt.Errorf("oms: no object %d", oid)
	}
	v, ok := obj.attrs[name]
	if !ok {
		s.mu.RUnlock()
		return Value{}, false, nil
	}
	out := v.clone()
	s.mu.RUnlock()
	if out.Kind == KindBlob {
		st.statBlobOut.Add(int64(len(out.Blob)))
	}
	st.statOps.Add(1)
	return out, true, nil
}

// GetString is a convenience accessor returning "" when absent.
func (st *Store) GetString(oid OID, name string) string {
	v, ok, err := st.Get(oid, name)
	if err != nil || !ok || v.Kind != KindString {
		return ""
	}
	return v.Str
}

// GetInt is a convenience accessor returning 0 when absent.
func (st *Store) GetInt(oid OID, name string) int64 {
	v, ok, err := st.Get(oid, name)
	if err != nil || !ok || v.Kind != KindInt {
		return 0
	}
	return v.Int
}

// GetBool is a convenience accessor returning false when absent.
func (st *Store) GetBool(oid OID, name string) bool {
	v, ok, err := st.Get(oid, name)
	if err != nil || !ok || v.Kind != KindBool {
		return false
	}
	return v.Bool
}

// --- relationships ------------------------------------------------------

// Link creates a relationship instance rel: from -> to, enforcing endpoint
// classes and cardinalities. Only the two stripes involved are locked.
func (st *Store) Link(rel string, from, to OID) error {
	if st.schema.rel(rel) == nil {
		return fmt.Errorf("oms: unknown relationship %q", rel)
	}
	unlock := st.lockPair(from, to)
	defer unlock()
	a, err := st.linkLockedU(rel, from, to)
	if err != nil {
		return err
	}
	st.commitApplied(a)
	return nil
}

// linkLockedU is Link's body. The caller holds the stripe write locks of
// both endpoints. Returns a no-op applied (nil undo, nil error) when the
// link already existed — the idempotent case.
func (st *Store) linkLockedU(rel string, from, to OID) (applied, error) {
	def := st.schema.rel(rel)
	if def == nil {
		return applied{}, fmt.Errorf("oms: unknown relationship %q", rel)
	}
	fobj, ok := st.stripeOf(from).objects[from]
	if !ok {
		return applied{}, fmt.Errorf("oms: no object %d", from)
	}
	tobj, ok := st.stripeOf(to).objects[to]
	if !ok {
		return applied{}, fmt.Errorf("oms: no object %d", to)
	}
	if fobj.class != def.From {
		return applied{}, fmt.Errorf("oms: relationship %q: from must be %q, got %q", rel, def.From, fobj.class)
	}
	if tobj.class != def.To {
		return applied{}, fmt.Errorf("oms: relationship %q: to must be %q, got %q", rel, def.To, tobj.class)
	}
	if fobj.links[rel][to] {
		return applied{}, nil // already linked; idempotent
	}
	if def.ToCard == One && len(fobj.links[rel]) >= 1 {
		return applied{}, fmt.Errorf("oms: relationship %q: object %d already has its single %q link", rel, from, def.To)
	}
	if def.FromCard == One && len(tobj.backlinks[rel]) >= 1 {
		return applied{}, fmt.Errorf("oms: relationship %q: object %d already has its single inbound link", rel, to)
	}
	if fobj.links[rel] == nil {
		fobj.links[rel] = map[OID]bool{}
	}
	if tobj.backlinks[rel] == nil {
		tobj.backlinks[rel] = map[OID]bool{}
	}
	fobj.links[rel][to] = true
	tobj.backlinks[rel][from] = true
	st.stripeOf(from).addRelFrom(rel, from)
	st.statOps.Add(1)
	return applied{
		change: Change{Kind: ChangeLink, Rel: rel, From: from, To: to},
		comp:   Change{Kind: ChangeUnlink, Rel: rel, From: from, To: to},
		undo:   func(u *Store) { u.undoLink(rel, from, to) },
	}, nil
}

func (st *Store) undoLink(rel string, from, to OID) {
	st.unlinkNoUndo(rel, from, to)
}

// Unlink removes a relationship instance if present.
func (st *Store) Unlink(rel string, from, to OID) error {
	if st.schema.rel(rel) == nil {
		return fmt.Errorf("oms: unknown relationship %q", rel)
	}
	unlock := st.lockPair(from, to)
	defer unlock()
	st.unlinkLocked(rel, from, to)
	return nil
}

// unlinkLocked removes the link, publishes and records undo; caller
// holds the stripes of both from and to.
func (st *Store) unlinkLocked(rel string, from, to OID) {
	st.commitApplied(st.unlinkLockedU(rel, from, to))
}

// unlinkLockedU is Unlink's body; caller holds the stripes of both from
// and to. Returns a no-op applied when the link did not exist.
func (st *Store) unlinkLockedU(rel string, from, to OID) applied {
	fobj, ok := st.stripeOf(from).objects[from]
	if !ok {
		return applied{}
	}
	if !fobj.links[rel][to] {
		return applied{}
	}
	st.unlinkNoUndo(rel, from, to)
	st.statOps.Add(1)
	return applied{
		change: Change{Kind: ChangeUnlink, Rel: rel, From: from, To: to},
		comp:   Change{Kind: ChangeLink, Rel: rel, From: from, To: to},
		undo:   func(u *Store) { u.undoUnlink(rel, from, to) },
	}
}

func (st *Store) undoUnlink(rel string, from, to OID) {
	f, ok1 := st.stripeOf(from).objects[from]
	t, ok2 := st.stripeOf(to).objects[to]
	if !ok1 || !ok2 {
		return
	}
	if f.links[rel] == nil {
		f.links[rel] = map[OID]bool{}
	}
	if t.backlinks[rel] == nil {
		t.backlinks[rel] = map[OID]bool{}
	}
	f.links[rel][to] = true
	t.backlinks[rel][from] = true
	st.stripeOf(from).addRelFrom(rel, from)
}

// unlinkNoUndo removes the link; caller holds the stripes of from and to.
func (st *Store) unlinkNoUndo(rel string, from, to OID) {
	if f, ok := st.stripeOf(from).objects[from]; ok {
		delete(f.links[rel], to)
		if len(f.links[rel]) == 0 {
			delete(f.links, rel)
			st.stripeOf(from).delRelFrom(rel, from)
		}
	}
	if t, ok := st.stripeOf(to).objects[to]; ok {
		delete(t.backlinks[rel], from)
		if len(t.backlinks[rel]) == 0 {
			delete(t.backlinks, rel)
		}
	}
}

// Targets returns the OIDs that from points to via rel, sorted.
func (st *Store) Targets(rel string, from OID) []OID {
	s := st.stripeOf(from)
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[from]
	if !ok {
		return nil
	}
	return sortedOIDs(obj.links[rel])
}

// Sources returns the OIDs that point to `to` via rel, sorted.
func (st *Store) Sources(rel string, to OID) []OID {
	s := st.stripeOf(to)
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[to]
	if !ok {
		return nil
	}
	return sortedOIDs(obj.backlinks[rel])
}

// Target returns the single rel target of from, or InvalidOID.
func (st *Store) Target(rel string, from OID) OID {
	ts := st.Targets(rel, from)
	if len(ts) == 0 {
		return InvalidOID
	}
	return ts[0]
}

func sortedOIDs(m map[OID]bool) []OID {
	out := make([]OID, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- queries ------------------------------------------------------------

// All returns the OIDs of every object of the given class, sorted. An empty
// class returns every object in the store. Class queries answer from the
// class index without touching the object stripes.
func (st *Store) All(class string) []OID {
	if class != "" {
		return st.classOIDs(class)
	}
	var out []OID
	st.forEachStripeRLocked(func(s *stripe) {
		for oid := range s.objects {
			out = append(out, oid)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindByAttr returns every object of class whose attribute name equals v.
// With a class given, only that class's objects are visited (via the class
// index) instead of the whole store.
func (st *Store) FindByAttr(class, name string, v Value) []OID {
	var out []OID
	match := func(obj *object) {
		if got, ok := obj.attrs[name]; ok && got.Equal(v) {
			out = append(out, obj.oid)
		}
	}
	st.forEachStripeRLocked(func(s *stripe) {
		if class != "" {
			for oid := range s.byClass[class] {
				if obj, ok := s.objects[oid]; ok {
					match(obj)
				}
			}
			return
		}
		for _, obj := range s.objects {
			match(obj)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns the number of live objects of a class ("" counts all).
// Class counts answer straight from the index.
func (st *Store) Count(class string) int {
	n := 0
	st.forEachStripeRLocked(func(s *stripe) {
		if class != "" {
			n += len(s.byClass[class])
		} else {
			n += len(s.objects)
		}
	})
	return n
}

// LinkPair is one (from, to) instance of a relationship type.
type LinkPair struct {
	From, To OID
}

// Related returns every (from, to) pair of the given relationship type,
// sorted by from then to. The relationship index narrows the visit to
// objects that actually hold links of that type — no full-store scan.
func (st *Store) Related(rel string) []LinkPair {
	var out []LinkPair
	st.forEachStripeRLocked(func(s *stripe) {
		for from := range s.relFrom[rel] {
			if obj, ok := s.objects[from]; ok {
				for to := range obj.links[rel] {
					out = append(out, LinkPair{From: from, To: to})
				}
			}
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// ObjectsOf returns the objects participating in the given relationship
// type on the From side, sorted — an index lookup, not a scan.
func (st *Store) ObjectsOf(rel string) []OID {
	var out []OID
	st.forEachStripeRLocked(func(s *stripe) {
		for oid := range s.relFrom[rel] {
			out = append(out, oid)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
