// Package oms implements a small object-oriented database kernel modelled
// after the OMS database used by the JESSI-COMMON-Framework (JCF 3.0).
//
// OMS stores typed objects. Every object belongs to a class declared in a
// Schema; a class defines the attributes an object may carry and the binary
// relationship types it may participate in. The kernel provides:
//
//   - schema definition (classes, attributes, relationship types with
//     cardinality constraints),
//   - object creation/deletion and attribute access,
//   - binary relationships between objects with cardinality checking,
//   - transactions with rollback (an undo log per transaction),
//   - persistence of the whole store to a JSON snapshot file, and
//   - blob storage with file-system staging (CopyIn/CopyOut), mirroring the
//     JCF behaviour that encapsulated tools never touch database internals
//     but exchange design data through the UNIX file system.
//
// The paper (section 2.1) stresses two properties this package reproduces
// faithfully: metadata and design data live in one common database, and
// "direct access to the internal structure of the stored data by an
// appropriate interface is not possible" — callers get copies, never
// internal references.
package oms

import (
	"fmt"
	"sort"
	"sync"
)

// OID identifies an object inside one Store. OIDs are never reused.
type OID int64

// InvalidOID is the zero OID; no object ever has it.
const InvalidOID OID = 0

// Kind enumerates the attribute value types OMS supports.
type Kind int

// Attribute kinds.
const (
	KindString Kind = iota
	KindInt
	KindBool
	KindBlob // arbitrary bytes, used for staged design data
)

// String returns the OTO-D style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindBlob:
		return "blob"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a single attribute value. Exactly one field is meaningful,
// selected by Kind.
type Value struct {
	Kind Kind
	Str  string
	Int  int64
	Bool bool
	Blob []byte
}

// S returns a string Value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I returns an int Value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// B returns a bool Value.
func B(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Bytes returns a blob Value holding a private copy of p.
func Bytes(p []byte) Value {
	cp := make([]byte, len(p))
	copy(cp, p)
	return Value{Kind: KindBlob, Blob: cp}
}

// clone returns a deep copy of v so callers can never alias store internals.
func (v Value) clone() Value {
	if v.Kind == KindBlob {
		return Bytes(v.Blob)
	}
	return v
}

// Equal reports whether two values have the same kind and content.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == w.Str
	case KindInt:
		return v.Int == w.Int
	case KindBool:
		return v.Bool == w.Bool
	case KindBlob:
		if len(v.Blob) != len(w.Blob) {
			return false
		}
		for i := range v.Blob {
			if v.Blob[i] != w.Blob[i] {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	case KindBlob:
		return fmt.Sprintf("blob[%d]", len(v.Blob))
	}
	return "?"
}

// AttrDef declares one attribute of a class.
type AttrDef struct {
	Name     string
	Kind     Kind
	Required bool
}

// Cardinality constrains how many links of a relationship type an object may
// have on one side.
type Cardinality int

// Cardinalities. One means at most a single link on that side; Many is
// unbounded.
const (
	One Cardinality = iota
	Many
)

// String returns "1" or "N".
func (c Cardinality) String() string {
	if c == One {
		return "1"
	}
	return "N"
}

// RelDef declares a directed binary relationship type between two classes.
// From/To name classes; FromCard constrains how many links a single target
// object may receive, ToCard how many links a single source object may hold.
// (So ToCard==One means "each From object points to at most one To object",
// matching the usual crow's-foot reading From —— To.)
type RelDef struct {
	Name     string
	From, To string // class names
	FromCard Cardinality
	ToCard   Cardinality
}

// Class declares an object type.
type Class struct {
	Name  string
	Attrs []AttrDef
}

func (c *Class) attr(name string) (AttrDef, bool) {
	for _, a := range c.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrDef{}, false
}

// Schema is the set of classes and relationship types a Store enforces.
// A Schema is immutable once handed to NewStore.
type Schema struct {
	classes map[string]*Class
	rels    map[string]*RelDef
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{classes: map[string]*Class{}, rels: map[string]*RelDef{}}
}

// AddClass registers a class. It returns an error if the name is already
// taken or an attribute is duplicated.
func (s *Schema) AddClass(name string, attrs ...AttrDef) error {
	if name == "" {
		return fmt.Errorf("oms: empty class name")
	}
	if _, dup := s.classes[name]; dup {
		return fmt.Errorf("oms: duplicate class %q", name)
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if a.Name == "" {
			return fmt.Errorf("oms: class %q has attribute with empty name", name)
		}
		if seen[a.Name] {
			return fmt.Errorf("oms: class %q duplicates attribute %q", name, a.Name)
		}
		seen[a.Name] = true
	}
	s.classes[name] = &Class{Name: name, Attrs: append([]AttrDef(nil), attrs...)}
	return nil
}

// AddRel registers a relationship type. Both endpoint classes must exist.
func (s *Schema) AddRel(def RelDef) error {
	if def.Name == "" {
		return fmt.Errorf("oms: empty relationship name")
	}
	if _, dup := s.rels[def.Name]; dup {
		return fmt.Errorf("oms: duplicate relationship %q", def.Name)
	}
	if _, ok := s.classes[def.From]; !ok {
		return fmt.Errorf("oms: relationship %q: unknown class %q", def.Name, def.From)
	}
	if _, ok := s.classes[def.To]; !ok {
		return fmt.Errorf("oms: relationship %q: unknown class %q", def.Name, def.To)
	}
	cp := def
	s.rels[def.Name] = &cp
	return nil
}

// Class returns the class declaration, or nil.
func (s *Schema) Class(name string) *Class { return s.classes[name] }

// Rel returns the relationship declaration, or nil.
func (s *Schema) Rel(name string) *RelDef { return s.rels[name] }

// Classes returns all class names, sorted.
func (s *Schema) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for n := range s.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Rels returns all relationship names, sorted.
func (s *Schema) Rels() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// object is the internal representation; never escapes the package.
type object struct {
	oid   OID
	class string
	attrs map[string]Value
	// links[relName] is the set of OIDs this object points to (as From side).
	links map[string]map[OID]bool
	// backlinks[relName] is the set of OIDs pointing at this object.
	backlinks map[string]map[OID]bool
}

func newObject(oid OID, class string) *object {
	return &object{
		oid:       oid,
		class:     class,
		attrs:     map[string]Value{},
		links:     map[string]map[OID]bool{},
		backlinks: map[string]map[OID]bool{},
	}
}

// Store is a live OMS database instance. All methods are safe for concurrent
// use.
type Store struct {
	mu      sync.RWMutex
	schema  *Schema
	objects map[OID]*object
	nextOID OID
	tx      *txLog // non-nil while a transaction is open

	// stats for the performance experiments (section 3.6).
	statOps      int64
	statBlobIn   int64 // bytes copied into the database
	statBlobOut  int64 // bytes copied out of the database
	statCommits  int64
	statRollback int64
}

// NewStore returns an empty store enforcing schema.
func NewStore(schema *Schema) *Store {
	return &Store{schema: schema, objects: map[OID]*object{}, nextOID: 1}
}

// Schema returns the schema the store enforces.
func (st *Store) Schema() *Schema { return st.schema }

// Stats reports cumulative operation counters (ops, blob bytes in, blob
// bytes out). Used by the section 3.6 experiments.
func (st *Store) Stats() (ops, blobIn, blobOut int64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.statOps, st.statBlobIn, st.statBlobOut
}

// --- transactions -----------------------------------------------------

type undoFn func(st *Store)

type txLog struct {
	undo []undoFn
}

// Begin opens a transaction. Only one transaction may be open at a time;
// nested Begin is an error. Operations performed while a transaction is open
// are rolled back by Rollback.
func (st *Store) Begin() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.tx != nil {
		return fmt.Errorf("oms: transaction already open")
	}
	st.tx = &txLog{}
	return nil
}

// Commit closes the open transaction, keeping all changes.
func (st *Store) Commit() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.tx == nil {
		return fmt.Errorf("oms: no open transaction")
	}
	st.tx = nil
	st.statCommits++
	return nil
}

// Rollback undoes every operation performed since Begin.
func (st *Store) Rollback() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.tx == nil {
		return fmt.Errorf("oms: no open transaction")
	}
	log := st.tx
	st.tx = nil // undo functions run outside the tx
	for i := len(log.undo) - 1; i >= 0; i-- {
		log.undo[i](st)
	}
	st.statRollback++
	return nil
}

// InTx reports whether a transaction is open.
func (st *Store) InTx() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.tx != nil
}

func (st *Store) record(fn undoFn) {
	if st.tx != nil {
		st.tx.undo = append(st.tx.undo, fn)
	}
}

// --- object lifecycle -------------------------------------------------

// Create allocates a new object of the given class with the given attribute
// values. Required attributes must be present; kinds must match the schema.
func (st *Store) Create(class string, attrs map[string]Value) (OID, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cls := st.schema.Class(class)
	if cls == nil {
		return InvalidOID, fmt.Errorf("oms: unknown class %q", class)
	}
	for name, v := range attrs {
		def, ok := cls.attr(name)
		if !ok {
			return InvalidOID, fmt.Errorf("oms: class %q has no attribute %q", class, name)
		}
		if def.Kind != v.Kind {
			return InvalidOID, fmt.Errorf("oms: attribute %s.%s wants %s, got %s", class, name, def.Kind, v.Kind)
		}
	}
	for _, def := range cls.Attrs {
		if def.Required {
			if _, ok := attrs[def.Name]; !ok {
				return InvalidOID, fmt.Errorf("oms: class %q requires attribute %q", class, def.Name)
			}
		}
	}
	oid := st.nextOID
	st.nextOID++
	obj := newObject(oid, class)
	for name, v := range attrs {
		obj.attrs[name] = v.clone()
		if v.Kind == KindBlob {
			st.statBlobIn += int64(len(v.Blob))
		}
	}
	st.objects[oid] = obj
	st.statOps++
	st.record(func(s *Store) { delete(s.objects, oid) })
	return oid, nil
}

// Delete removes an object and all relationships it participates in.
func (st *Store) Delete(oid OID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	obj, ok := st.objects[oid]
	if !ok {
		return fmt.Errorf("oms: no object %d", oid)
	}
	// Detach all links (both directions) first, recording undo entries.
	for rel, targets := range obj.links {
		for to := range targets {
			st.unlinkLocked(rel, oid, to)
		}
	}
	for rel, sources := range obj.backlinks {
		for from := range sources {
			st.unlinkLocked(rel, from, oid)
		}
	}
	delete(st.objects, oid)
	st.statOps++
	st.record(func(s *Store) { s.objects[oid] = obj })
	return nil
}

// Exists reports whether oid names a live object.
func (st *Store) Exists(oid OID) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.objects[oid]
	return ok
}

// ClassOf returns the class of an object.
func (st *Store) ClassOf(oid OID) (string, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	obj, ok := st.objects[oid]
	if !ok {
		return "", fmt.Errorf("oms: no object %d", oid)
	}
	return obj.class, nil
}

// --- attributes ---------------------------------------------------------

// Set assigns an attribute value, checked against the schema.
func (st *Store) Set(oid OID, name string, v Value) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	obj, ok := st.objects[oid]
	if !ok {
		return fmt.Errorf("oms: no object %d", oid)
	}
	def, ok := st.schema.Class(obj.class).attr(name)
	if !ok {
		return fmt.Errorf("oms: class %q has no attribute %q", obj.class, name)
	}
	if def.Kind != v.Kind {
		return fmt.Errorf("oms: attribute %s.%s wants %s, got %s", obj.class, name, def.Kind, v.Kind)
	}
	old, had := obj.attrs[name]
	obj.attrs[name] = v.clone()
	if v.Kind == KindBlob {
		st.statBlobIn += int64(len(v.Blob))
	}
	st.statOps++
	st.record(func(s *Store) {
		if o, ok := s.objects[oid]; ok {
			if had {
				o.attrs[name] = old
			} else {
				delete(o.attrs, name)
			}
		}
	})
	return nil
}

// Get returns a copy of an attribute value. The bool reports presence.
func (st *Store) Get(oid OID, name string) (Value, bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	obj, ok := st.objects[oid]
	if !ok {
		return Value{}, false, fmt.Errorf("oms: no object %d", oid)
	}
	v, ok := obj.attrs[name]
	if !ok {
		return Value{}, false, nil
	}
	if v.Kind == KindBlob {
		st.statBlobOut += int64(len(v.Blob))
	}
	st.statOps++
	return v.clone(), true, nil
}

// GetString is a convenience accessor returning "" when absent.
func (st *Store) GetString(oid OID, name string) string {
	v, ok, err := st.Get(oid, name)
	if err != nil || !ok || v.Kind != KindString {
		return ""
	}
	return v.Str
}

// GetInt is a convenience accessor returning 0 when absent.
func (st *Store) GetInt(oid OID, name string) int64 {
	v, ok, err := st.Get(oid, name)
	if err != nil || !ok || v.Kind != KindInt {
		return 0
	}
	return v.Int
}

// GetBool is a convenience accessor returning false when absent.
func (st *Store) GetBool(oid OID, name string) bool {
	v, ok, err := st.Get(oid, name)
	if err != nil || !ok || v.Kind != KindBool {
		return false
	}
	return v.Bool
}

// --- relationships ------------------------------------------------------

// Link creates a relationship instance rel: from -> to, enforcing endpoint
// classes and cardinalities.
func (st *Store) Link(rel string, from, to OID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	def := st.schema.Rel(rel)
	if def == nil {
		return fmt.Errorf("oms: unknown relationship %q", rel)
	}
	fobj, ok := st.objects[from]
	if !ok {
		return fmt.Errorf("oms: no object %d", from)
	}
	tobj, ok := st.objects[to]
	if !ok {
		return fmt.Errorf("oms: no object %d", to)
	}
	if fobj.class != def.From {
		return fmt.Errorf("oms: relationship %q: from must be %q, got %q", rel, def.From, fobj.class)
	}
	if tobj.class != def.To {
		return fmt.Errorf("oms: relationship %q: to must be %q, got %q", rel, def.To, tobj.class)
	}
	if fobj.links[rel][to] {
		return nil // already linked; idempotent
	}
	if def.ToCard == One && len(fobj.links[rel]) >= 1 {
		return fmt.Errorf("oms: relationship %q: object %d already has its single %q link", rel, from, def.To)
	}
	if def.FromCard == One && len(tobj.backlinks[rel]) >= 1 {
		return fmt.Errorf("oms: relationship %q: object %d already has its single inbound link", rel, to)
	}
	if fobj.links[rel] == nil {
		fobj.links[rel] = map[OID]bool{}
	}
	if tobj.backlinks[rel] == nil {
		tobj.backlinks[rel] = map[OID]bool{}
	}
	fobj.links[rel][to] = true
	tobj.backlinks[rel][from] = true
	st.statOps++
	st.record(func(s *Store) { s.unlinkNoUndo(rel, from, to) })
	return nil
}

// Unlink removes a relationship instance if present.
func (st *Store) Unlink(rel string, from, to OID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.schema.Rel(rel) == nil {
		return fmt.Errorf("oms: unknown relationship %q", rel)
	}
	st.unlinkLocked(rel, from, to)
	return nil
}

// unlinkLocked removes the link and records undo; caller holds mu.
func (st *Store) unlinkLocked(rel string, from, to OID) {
	fobj, ok := st.objects[from]
	if !ok {
		return
	}
	if !fobj.links[rel][to] {
		return
	}
	st.unlinkNoUndo(rel, from, to)
	st.statOps++
	st.record(func(s *Store) {
		f, ok1 := s.objects[from]
		t, ok2 := s.objects[to]
		if !ok1 || !ok2 {
			return
		}
		if f.links[rel] == nil {
			f.links[rel] = map[OID]bool{}
		}
		if t.backlinks[rel] == nil {
			t.backlinks[rel] = map[OID]bool{}
		}
		f.links[rel][to] = true
		t.backlinks[rel][from] = true
	})
}

func (st *Store) unlinkNoUndo(rel string, from, to OID) {
	if f, ok := st.objects[from]; ok {
		delete(f.links[rel], to)
	}
	if t, ok := st.objects[to]; ok {
		delete(t.backlinks[rel], from)
	}
}

// Targets returns the OIDs that from points to via rel, sorted.
func (st *Store) Targets(rel string, from OID) []OID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	obj, ok := st.objects[from]
	if !ok {
		return nil
	}
	return sortedOIDs(obj.links[rel])
}

// Sources returns the OIDs that point to `to` via rel, sorted.
func (st *Store) Sources(rel string, to OID) []OID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	obj, ok := st.objects[to]
	if !ok {
		return nil
	}
	return sortedOIDs(obj.backlinks[rel])
}

// Target returns the single rel target of from, or InvalidOID.
func (st *Store) Target(rel string, from OID) OID {
	ts := st.Targets(rel, from)
	if len(ts) == 0 {
		return InvalidOID
	}
	return ts[0]
}

func sortedOIDs(m map[OID]bool) []OID {
	out := make([]OID, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- queries ------------------------------------------------------------

// All returns the OIDs of every object of the given class, sorted. An empty
// class returns every object in the store.
func (st *Store) All(class string) []OID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []OID
	for oid, obj := range st.objects {
		if class == "" || obj.class == class {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindByAttr returns every object of class whose attribute name equals v.
func (st *Store) FindByAttr(class, name string, v Value) []OID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []OID
	for oid, obj := range st.objects {
		if class != "" && obj.class != class {
			continue
		}
		if got, ok := obj.attrs[name]; ok && got.Equal(v) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns the number of live objects of a class ("" counts all).
func (st *Store) Count(class string) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if class == "" {
		return len(st.objects)
	}
	n := 0
	for _, obj := range st.objects {
		if obj.class == class {
			n++
		}
	}
	return n
}
