package backend

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is the atomic-rename file backend: every name is one regular file
// in the backend directory; Put writes a dot-prefixed temporary sibling
// and renames it into place, so a name always reads as exactly one
// complete payload — before or after, never torn.
type File struct {
	dir string
}

// OpenFile opens (creating if needed) a file backend rooted at dir.
func OpenFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backend: open file backend: %w", err)
	}
	return &File{dir: dir}, nil
}

// Dir returns the backend's root directory.
func (f *File) Dir() string { return f.dir }

// Put atomically stores payload under name.
func (f *File) Put(name string, payload []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	if err := AtomicWriteFile(f.dir, name, payload); err != nil {
		return fmt.Errorf("backend: put %s: %w", name, err)
	}
	return nil
}

// AtomicWriteFile writes payload to dir/name with the full
// crash-and-concurrency discipline the Backend contract demands
// (exported so the oms snapshot writer commits with the same rigor):
//
//   - the temp file is created with a unique dot-prefixed name
//     (checkName rejects leading dots, so it can never collide with a
//     stored name, and concurrent Puts of the same name never share it),
//   - the temp file is fsynced before the rename, so the rename can
//     never install a file whose bytes are still in flight, and
//   - the directory is fsynced after the rename, so the commit itself
//     survives a power loss.
func AtomicWriteFile(dir, name string, payload []byte) error {
	tmp, err := os.CreateTemp(dir, "."+name+".*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op once the rename has happened
	if _, err := tmp.Write(payload); err != nil {
		return errors.Join(err, tmp.Close())
	}
	if err := tmp.Sync(); err != nil {
		return errors.Join(err, tmp.Close())
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-committed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Get returns the payload stored under name.
func (f *File) Get(name string) ([]byte, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(f.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, fmt.Errorf("backend: get %s: %w", name, err)
	}
	return data, nil
}

// List returns the stored names, sorted.
func (f *File) List() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("backend: list: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes a name; absent names are a no-op.
func (f *File) Delete(name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(f.dir, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("backend: delete %s: %w", name, err)
	}
	return nil
}
