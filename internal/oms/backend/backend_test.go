package backend

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func openFileBackend(tb testing.TB, dir string) Backend {
	tb.Helper()
	b, err := OpenFile(dir)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func openSegmentBackend(tb testing.TB, dir string) Backend {
	tb.Helper()
	b, err := OpenSegment(dir)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// Both backends pass the identical contract suite — the property the
// framework's pluggable persistence rests on.
func TestFileBackendConformance(t *testing.T)    { Conformance(t, openFileBackend) }
func TestSegmentBackendConformance(t *testing.T) { Conformance(t, openSegmentBackend) }

// TestSegmentTornTailIgnored simulates the crash the WAL design defends
// against: bytes appended to the active segment after the last committed
// manifest (a torn Put) must be invisible after reopen.
func TestSegmentTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("snap", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: garbage lands on the active segment tail with no
	// manifest commit.
	seg := filepath.Join(dir, s.refs["snap"].Segment)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("JWAL\xff\xff torn half-record")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Get("snap")
	if err != nil || string(got) != "committed" {
		t.Fatalf("Get after torn tail = %q, %v", got, err)
	}
	// The backend keeps working: a fresh Put appends past the garbage and
	// commits cleanly.
	if err := re.Put("snap", []byte("recommitted")); err != nil {
		t.Fatal(err)
	}
	got, err = re.Get("snap")
	if err != nil || string(got) != "recommitted" {
		t.Fatalf("Get after recovery Put = %q, %v", got, err)
	}
}

// TestSegmentCorruptPayloadDetected flips a committed payload byte on
// disk and expects the checksum to catch it.
func TestSegmentCorruptPayloadDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("snap", []byte("pristine-payload")); err != nil {
		t.Fatal(err)
	}
	ref := s.refs["snap"]
	seg := filepath.Join(dir, ref.Segment)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[ref.Offset+segHeaderLen+int64(len("snap"))] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("snap"); err == nil {
		t.Fatal("corrupt payload passed checksum verification")
	}
}

// TestSegmentRotationAndGC drives the backend across the rotation
// threshold and checks that dead segments are reclaimed while every live
// name stays readable.
func TestSegmentRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.maxSegBytes = 4096 // rotate quickly
	payload := bytes.Repeat([]byte("r"), 1500)
	for i := 0; i < 12; i++ {
		if err := s.Put("hot", payload); err != nil { // same name: old records die
			t.Fatal(err)
		}
	}
	if err := s.Put("cold", []byte("still-here")); err != nil {
		t.Fatal(err)
	}
	if s.nextSeg < 3 {
		t.Fatalf("no rotation happened: nextSeg = %d", s.nextSeg)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".wal" {
			segs++
		}
	}
	if segs > 3 {
		t.Fatalf("dead segments not collected: %d on disk", segs)
	}
	got, err := s.Get("hot")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("hot lost across rotation: %v", err)
	}
	re, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := re.Get("cold"); err != nil || string(got) != "still-here" {
		t.Fatalf("cold after reopen = %q, %v", got, err)
	}
}
