package backend

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Segment is the append-only segment (write-ahead log) backend.
//
// Payloads are appended as checksummed records to numbered segment files;
// a small JSON manifest, replaced by atomic rename on every Put/Delete,
// maps each live name to the segment, offset and checksum of its latest
// record. The manifest rename is the commit point: a crash mid-append
// leaves a torn tail that no manifest references, and a crash mid-commit
// leaves the previous manifest — either way every name still reads as a
// complete, checksum-verified payload. Segments that no longer hold any
// live record are deleted once they are not the active tail.
//
// Layout under the backend directory:
//
//	MANIFEST        name -> record location map (atomic rename)
//	seg-%08d.wal    append-only record segments
type Segment struct {
	mu          sync.Mutex
	dir         string
	refs        map[string]segRef
	nextSeg     int
	active      *os.File
	activeName  string
	activeSize  int64
	maxSegBytes int64 // rotation threshold; var for tests
}

// segRef locates the latest record of one name.
type segRef struct {
	Segment string `json:"segment"`
	Offset  int64  `json:"offset"`
	Length  int64  `json:"length"` // payload length
	CRC     uint32 `json:"crc"`    // crc32 (IEEE) of the payload
}

// segManifest is the MANIFEST file content.
type segManifest struct {
	NextSeg int               `json:"next_seg"`
	Refs    map[string]segRef `json:"refs"`
}

const (
	segMagic          = "JWAL"
	segHeaderLen      = 4 + 4 + 8 + 4 // magic, nameLen, payloadLen, crc
	defaultMaxSegSize = 8 << 20
	manifestName      = "MANIFEST"
)

// OpenSegment opens (creating if needed) a segment backend rooted at dir.
// Reopening a directory after a crash recovers to the last committed
// manifest; unreferenced tail bytes are ignored and overwritten space is
// reclaimed as segments rotate.
func OpenSegment(dir string) (*Segment, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backend: open segment backend: %w", err)
	}
	s := &Segment{
		dir:         dir,
		refs:        map[string]segRef{},
		nextSeg:     1,
		maxSegBytes: defaultMaxSegSize,
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		var m segManifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("backend: corrupt manifest in %s: %w", dir, err)
		}
		if m.Refs != nil {
			s.refs = m.Refs
		}
		if m.NextSeg > 0 {
			s.nextSeg = m.NextSeg
		}
	case os.IsNotExist(err):
		// Fresh directory (or crash before the very first commit).
	default:
		return nil, fmt.Errorf("backend: open segment backend: %w", err)
	}
	return s, nil
}

// Dir returns the backend's root directory.
func (s *Segment) Dir() string { return s.dir }

// SupportsDeltas marks the segment backend as delta-capable: a Put is
// an append to the active segment, so writing a small delta payload
// costs O(delta), not O(store) — the property the framework's
// differential Save exploits.
func (s *Segment) SupportsDeltas() bool { return true }

// segPath returns the path of a segment file name.
func (s *Segment) segPath(name string) string { return filepath.Join(s.dir, name) }

// ensureActive opens (appending) the active segment; caller holds s.mu.
func (s *Segment) ensureActive() error {
	if s.active != nil {
		return nil
	}
	name := fmt.Sprintf("seg-%08d.wal", s.nextSeg)
	f, err := os.OpenFile(s.segPath(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("backend: open segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		return errors.Join(fmt.Errorf("backend: open segment: %w", err), f.Close())
	}
	s.active, s.activeName, s.activeSize = f, name, fi.Size()
	return nil
}

// Put appends a record for name and commits it via a manifest rename.
func (s *Segment) Put(name string, payload []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureActive(); err != nil {
		return err
	}
	rec := make([]byte, segHeaderLen+len(name)+len(payload))
	copy(rec, segMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(name)))
	binary.LittleEndian.PutUint64(rec[8:], uint64(len(payload)))
	crc := crc32.ChecksumIEEE(payload)
	binary.LittleEndian.PutUint32(rec[16:], crc)
	copy(rec[segHeaderLen:], name)
	copy(rec[segHeaderLen+len(name):], payload)
	offset := s.activeSize
	if _, err := s.active.Write(rec); err != nil {
		// The tail may now hold a partial record and s.activeSize no
		// longer matches the file: drop the handle so the next Put
		// re-Stats the true end of file. The garbage tail itself is
		// harmless — nothing committed references it.
		s.invalidateActive()
		return fmt.Errorf("backend: put %s: %w", name, err)
	}
	if err := s.active.Sync(); err != nil {
		s.invalidateActive()
		return fmt.Errorf("backend: put %s: %w", name, err)
	}
	s.activeSize += int64(len(rec))
	prev, hadPrev := s.refs[name]
	s.refs[name] = segRef{Segment: s.activeName, Offset: offset, Length: int64(len(payload)), CRC: crc}
	if err := s.commitManifest(); err != nil {
		// The appended record is unreachable without a manifest; roll the
		// in-memory index back to the last committed ref so state keeps
		// matching the on-disk manifest.
		if hadPrev {
			s.refs[name] = prev
		} else {
			delete(s.refs, name)
		}
		return fmt.Errorf("backend: put %s: %w", name, err)
	}
	if s.activeSize >= s.maxSegBytes {
		s.rotate()
	}
	s.collectGarbage()
	return nil
}

// commitManifest atomically replaces MANIFEST with the in-memory index;
// caller holds s.mu. This is the durability point of every mutation:
// the temp file is fsynced before the rename and the directory after
// it, so a power loss can never install a torn or unreachable manifest.
func (s *Segment) commitManifest() error {
	data, err := json.Marshal(&segManifest{NextSeg: s.nextSeg, Refs: s.refs})
	if err != nil {
		return err
	}
	return AtomicWriteFile(s.dir, manifestName, data)
}

// invalidateActive drops the active segment handle after a failed
// append so ensureActive reopens it and re-Stats the true size; caller
// holds s.mu.
func (s *Segment) invalidateActive() {
	if s.active != nil {
		s.active.Close() //lint:allow noerrdrop the handle is being discarded after a failed append; ensureActive re-Stats the truth
		s.active = nil
	}
	s.activeName, s.activeSize = "", 0
}

// rotate closes the active segment and points at a fresh one; caller
// holds s.mu. The new nextSeg lands in the manifest on the next commit.
func (s *Segment) rotate() {
	s.invalidateActive()
	s.nextSeg++
}

// collectGarbage removes segment files that hold no live record and are
// not the active tail; caller holds s.mu.
func (s *Segment) collectGarbage() {
	live := map[string]bool{s.activeName: true}
	for _, ref := range s.refs {
		live[ref.Segment] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return // best effort; unreferenced segments are harmless
	}
	current := fmt.Sprintf("seg-%08d.wal", s.nextSeg)
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || len(n) < 4 || n[:4] != "seg-" || live[n] || n == current {
			continue
		}
		os.Remove(s.segPath(n)) //lint:allow noerrdrop best-effort GC; an unreferenced segment left behind is harmless
	}
}

// Get reads and checksum-verifies the latest record of name.
//
// The ref is looked up and the segment file opened without holding s.mu
// across the I/O, so a concurrent Put of the same name can supersede
// the record and segment GC can then delete the file between the lookup
// and the open. That window only ever produces ENOENT (GC removes a
// segment strictly after the manifest stopped referencing it), so on
// ENOENT the lookup is simply retried against the newer manifest state.
func (s *Segment) Get(name string) ([]byte, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	var lastRef segRef
	var retried bool
	for {
		s.mu.Lock()
		ref, ok := s.refs[name]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		if retried && ref == lastRef {
			// Same committed ref, file still gone: the segment was
			// removed behind the backend's back, not by our GC.
			return nil, fmt.Errorf("backend: get %s: segment %s missing", name, ref.Segment)
		}
		payload, err := s.readRecord(name, ref)
		if os.IsNotExist(err) {
			// The segment was collected under us; the name must have
			// been re-Put (or Deleted) — retry against the new ref.
			lastRef, retried = ref, true
			continue
		}
		return payload, err
	}
}

// readRecord reads and verifies one record; no locks held.
func (s *Segment) readRecord(name string, ref segRef) ([]byte, error) {
	f, err := os.Open(s.segPath(ref.Segment))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err // raw: Get's retry loop keys off it
		}
		return nil, fmt.Errorf("backend: get %s: %w", name, err)
	}
	defer f.Close()
	rec := make([]byte, segHeaderLen+int64(len(name))+ref.Length)
	if _, err := f.ReadAt(rec, ref.Offset); err != nil {
		return nil, fmt.Errorf("backend: get %s: %w", name, err)
	}
	if string(rec[:4]) != segMagic {
		return nil, fmt.Errorf("backend: get %s: bad record magic", name)
	}
	nameLen := binary.LittleEndian.Uint32(rec[4:])
	payloadLen := binary.LittleEndian.Uint64(rec[8:])
	crc := binary.LittleEndian.Uint32(rec[16:])
	if int(nameLen) != len(name) || string(rec[segHeaderLen:segHeaderLen+len(name)]) != name {
		return nil, fmt.Errorf("backend: get %s: record names a different payload", name)
	}
	if int64(payloadLen) != ref.Length || crc != ref.CRC {
		return nil, fmt.Errorf("backend: get %s: record/manifest mismatch", name)
	}
	payload := rec[segHeaderLen+len(name):]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("backend: get %s: checksum mismatch", name)
	}
	return payload, nil
}

// List returns the live names, sorted.
func (s *Segment) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.refs))
	for n := range s.refs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes a name and commits the removal; absent names are a
// no-op.
func (s *Segment) Delete(name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.refs[name]
	if !ok {
		return nil
	}
	delete(s.refs, name)
	if err := s.commitManifest(); err != nil {
		s.refs[name] = ref
		return fmt.Errorf("backend: delete %s: %w", name, err)
	}
	s.collectGarbage()
	return nil
}
