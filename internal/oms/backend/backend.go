// Package backend defines the pluggable storage layer the persistence
// subsystem writes snapshots through — the "copy interface to the
// database/file system" responsibility the paper assigns to the JCF
// master (section 2.1), factored out so the framework above never cares
// how bytes reach disk.
//
// A Backend stores named, opaque payloads. The single contract every
// implementation must honour is that Put is atomic and durable at the
// name level: a reader (including one that opens the directory after a
// crash) observes either the previous payload of a name or the new one,
// never a torn mixture. The framework builds its crash-consistent commit
// protocol on exactly that property: it Puts the snapshot payloads under
// fresh epoch-qualified names and then Puts one small manifest naming the
// pair — the manifest Put is the commit point.
//
// Two implementations ship:
//
//   - File: one file per name, written via temp file + atomic rename —
//     the classic UNIX snapshot layout.
//   - Segment: an append-only segment (write-ahead) log with a manifest;
//     Put appends a checksummed record and atomically renames a manifest
//     pointing at the latest record of every name. Torn tail appends are
//     simply never referenced by the manifest.
//
// Both pass the same conformance suite (see Conformance).
package backend

import (
	"errors"
	"fmt"
	"strings"
)

// ErrNotFound is returned by Get for a name that has no stored payload.
var ErrNotFound = errors.New("backend: name not found")

// Backend stores named snapshot payloads. Implementations must be safe
// for concurrent use.
type Backend interface {
	// Put atomically stores payload under name, replacing any previous
	// payload. Once Put returns, a crash must not lose the new payload or
	// resurrect a torn one.
	Put(name string, payload []byte) error
	// Get returns the most recently Put payload for name. The returned
	// slice is private to the caller. Missing names return ErrNotFound.
	Get(name string) ([]byte, error)
	// List returns every name that currently has a payload, sorted.
	List() ([]string, error)
	// Delete removes a name. Deleting an absent name is a no-op.
	Delete(name string) error
}

// DeltaCapable marks backends whose Put cost is dominated by payload
// size rather than by rewrite amplification — appending a small delta
// really is cheap. The segment/WAL backend qualifies (every Put is an
// append to the active segment and old records are retained until
// unreferenced); the one-file-per-name File backend does not gain
// anything from deltas beyond smaller files, so it leaves the interface
// unimplemented and the persistence layer keeps writing full snapshots
// through it.
type DeltaCapable interface {
	// SupportsDeltas reports that incremental (delta-chain) persistence
	// should be used against this backend.
	SupportsDeltas() bool
}

// checkName rejects names that could escape the backend's directory or
// collide with its internal bookkeeping files.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("backend: empty name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '_' || r == '@':
		default:
			return fmt.Errorf("backend: invalid name %q (allowed: letters, digits, . - _ @)", name)
		}
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("backend: invalid name %q (must not start with a dot)", name)
	}
	return nil
}
