package backend

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Factory opens a Backend over dir. Conformance calls it repeatedly on
// the same directory to check that state survives a reopen (the crash /
// restart story), and on fresh directories for isolated cases.
type Factory func(tb testing.TB, dir string) Backend

// Conformance runs the Backend contract against an implementation. Both
// shipped backends — and any future one — must pass it unchanged; the
// framework's commit protocol relies on exactly these semantics.
func Conformance(t *testing.T, open Factory) {
	t.Run("GetMissing", func(t *testing.T) {
		b := open(t, t.TempDir())
		if _, err := b.Get("absent"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
		}
	})

	t.Run("PutGetRoundTrip", func(t *testing.T) {
		b := open(t, t.TempDir())
		payloads := map[string][]byte{
			"small":      []byte("hello"),
			"empty":      {},
			"binary.bin": {0, 1, 2, 255, 254, '\n', 0},
			"large@7":    bytes.Repeat([]byte{0xAB, 0xCD}, 1<<19), // 1 MiB
		}
		for name, p := range payloads {
			if err := b.Put(name, p); err != nil {
				t.Fatalf("Put(%s): %v", name, err)
			}
		}
		for name, p := range payloads {
			got, err := b.Get(name)
			if err != nil {
				t.Fatalf("Get(%s): %v", name, err)
			}
			if !bytes.Equal(got, p) {
				t.Fatalf("Get(%s) = %d bytes, want %d (content differs)", name, len(got), len(p))
			}
		}
	})

	t.Run("ReturnedPayloadIsPrivate", func(t *testing.T) {
		b := open(t, t.TempDir())
		if err := b.Put("n", []byte("immutable")); err != nil {
			t.Fatal(err)
		}
		got, err := b.Get("n")
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			got[i] = 'X'
		}
		again, err := b.Get("n")
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != "immutable" {
			t.Fatalf("stored payload corrupted by caller mutation: %q", again)
		}
	})

	t.Run("OverwriteReturnsLatest", func(t *testing.T) {
		b := open(t, t.TempDir())
		for i := 0; i < 5; i++ {
			if err := b.Put("n", []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		got, err := b.Get("n")
		if err != nil || string(got) != "v4" {
			t.Fatalf("Get after overwrites = %q, %v", got, err)
		}
	})

	t.Run("ListSortedAndDeleteAware", func(t *testing.T) {
		b := open(t, t.TempDir())
		for _, n := range []string{"zeta", "alpha", "mid"} {
			if err := b.Put(n, []byte(n)); err != nil {
				t.Fatal(err)
			}
		}
		names, err := b.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
			t.Fatalf("List = %v", names)
		}
		if err := b.Delete("mid"); err != nil {
			t.Fatal(err)
		}
		if err := b.Delete("never-existed"); err != nil {
			t.Fatalf("Delete of absent name: %v", err)
		}
		names, err = b.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
			t.Fatalf("List after delete = %v", names)
		}
		if _, err := b.Get("mid"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(deleted) = %v, want ErrNotFound", err)
		}
	})

	t.Run("RejectsHostileNames", func(t *testing.T) {
		b := open(t, t.TempDir())
		for _, n := range []string{"", "../escape", "a/b", ".hidden", "a b", "x\x00y"} {
			if err := b.Put(n, []byte("x")); err == nil {
				t.Fatalf("Put(%q) accepted", n)
			}
			if _, err := b.Get(n); err == nil {
				t.Fatalf("Get(%q) accepted", n)
			}
		}
	})

	t.Run("SurvivesReopen", func(t *testing.T) {
		dir := t.TempDir()
		b := open(t, dir)
		if err := b.Put("keep", []byte("v1")); err != nil {
			t.Fatal(err)
		}
		if err := b.Put("keep", []byte("v2")); err != nil {
			t.Fatal(err)
		}
		if err := b.Put("other", bytes.Repeat([]byte("z"), 4096)); err != nil {
			t.Fatal(err)
		}
		if err := b.Delete("other"); err != nil {
			t.Fatal(err)
		}
		re := open(t, dir) // same directory: simulated restart
		got, err := re.Get("keep")
		if err != nil || string(got) != "v2" {
			t.Fatalf("after reopen Get(keep) = %q, %v", got, err)
		}
		if _, err := re.Get("other"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted name resurrected by reopen: %v", err)
		}
		names, err := re.List()
		if err != nil || len(names) != 1 || names[0] != "keep" {
			t.Fatalf("after reopen List = %v, %v", names, err)
		}
	})

	t.Run("ConcurrentPutsDistinctNames", func(t *testing.T) {
		b := open(t, t.TempDir())
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					name := fmt.Sprintf("g%d", g)
					if err := b.Put(name, []byte(fmt.Sprintf("g%d-i%d", g, i))); err != nil {
						errs <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for g := 0; g < 8; g++ {
			got, err := b.Get(fmt.Sprintf("g%d", g))
			if err != nil || string(got) != fmt.Sprintf("g%d-i9", g) {
				t.Fatalf("Get(g%d) = %q, %v", g, got, err)
			}
		}
	})
}
