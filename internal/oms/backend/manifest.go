package backend

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// The commit manifest — the one payload whose atomic replacement commits
// a (database, framework-metadata) snapshot pair, plus the base-epoch +
// delta-chain bookkeeping of differential commits.
//
// The format used to be private to the persistence layer (internal/jcf).
// It lives here, next to the Backend contract it depends on, because two
// layers now consume the commit stream: the persistence layer writes and
// replays it locally, and the replication publisher (internal/repl)
// ships it — base snapshot plus encoded delta chain — to bootstrap
// remote follower stores without re-encoding the live database.

// ManifestKey is the reserved backend name of the commit manifest; its
// atomic Put is the commit point of every save epoch.
const ManifestKey = "CURRENT"

// Manifest names the payloads of one committed save epoch: the database
// snapshot, the framework metadata, and (for differential commits) the
// base epoch whose full snapshot the delta chain replays over. FeedLSN
// is the database's change-feed position as of this epoch — where the
// next differential save, or a replica bootstrapped from this manifest,
// continues from.
type Manifest struct {
	Epoch        int64      `json:"epoch"`
	OMS          string     `json:"oms"`
	Framework    string     `json:"framework"`
	OMSSum       string     `json:"oms_sha256"`
	FrameworkSum string     `json:"framework_sha256"`
	BaseEpoch    int64      `json:"base_epoch,omitempty"`
	BaseLSN      uint64     `json:"base_lsn,omitempty"`
	Deltas       []DeltaRef `json:"deltas,omitempty"`
	FeedLSN      uint64     `json:"feed_lsn,omitempty"`
}

// DeltaRef names one delta payload in a manifest's chain: the encoded
// change records with FromLSN < LSN <= ToLSN (an oms.EncodeChanges
// payload).
type DeltaRef struct {
	Name    string `json:"name"`
	Sum     string `json:"sha256"`
	FromLSN uint64 `json:"from_lsn"`
	ToLSN   uint64 `json:"to_lsn"`
}

// PayloadNames returns every backend name the manifest references — what
// a garbage collector must retain and a mirror must copy.
func (m *Manifest) PayloadNames() []string {
	out := []string{m.OMS, m.Framework}
	for _, d := range m.Deltas {
		out = append(out, d.Name)
	}
	return out
}

// LoadManifest reads and validates the commit manifest of a backend.
// Backends that have never committed return ErrNotFound (wrapped).
func LoadManifest(b Backend) (Manifest, error) {
	var m Manifest
	data, err := b.Get(ManifestKey)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("backend: corrupt manifest: %w", err)
	}
	if m.OMS == "" || m.Framework == "" {
		return m, fmt.Errorf("backend: corrupt manifest: missing payload names")
	}
	return m, nil
}

// PutManifest commits a manifest: one atomic Put of ManifestKey.
func PutManifest(b Backend, m Manifest) error {
	data, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return fmt.Errorf("backend: encode manifest: %w", err)
	}
	return b.Put(ManifestKey, data)
}

// SHA256Hex returns the hex-encoded SHA-256 of a payload — the checksum
// format manifests carry.
func SHA256Hex(p []byte) string {
	sum := sha256.Sum256(p)
	return hex.EncodeToString(sum[:])
}
