package oms

import (
	"strings"
	"testing"
)

// Wire robustness: DecodeChanges is the entry point for bytes that
// crossed a disk (delta payloads) or a network (replication frames).
// Truncated, corrupt or short input must produce an error — never a
// panic, and never a change sequence that half-applies a commit group.

// wirePayload builds a valid two-group payload: a create+set+link batch
// group and a single-op group.
func wirePayload(t testing.TB) []byte {
	t.Helper()
	schema := feedSchema(t)
	st := NewStore(schema)
	cell, err := st.Create("Cell", map[string]Value{"name": S("alu"), "data": Bytes([]byte{1, 2, 3})})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	v := b.CreateOwned("Version", map[string]Value{"num": I(1)})
	b.Link("hasVersion", cell, v)
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	if err := st.Set(cell, "rev", I(9)); err != nil {
		t.Fatal(err)
	}
	recs, ok := st.Changes(0)
	if !ok || len(recs) == 0 {
		t.Fatal("no changes collected")
	}
	payload, err := EncodeChanges(recs)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestDecodeChangesRobustness(t *testing.T) {
	valid := wirePayload(t)
	schema := feedSchema(t)

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"garbage", []byte("\x00\xFF\x17garbage")},
		{"not-json", []byte("hello world")},
		{"wrong-shape-object", []byte(`{"lsn":1}`)},
		{"wrong-shape-scalar", []byte(`42`)},
		{"truncated-half", valid[:len(valid)/2]},
		{"truncated-tail", valid[:len(valid)-3]},
		{"corrupt-kind-type", []byte(`[{"lsn":1,"group":1,"kind":"create"}]`)},
		{"corrupt-oid-type", []byte(`[{"lsn":1,"group":1,"kind":0,"oid":"x"}]`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeChanges(tc.payload); err == nil {
				t.Fatalf("DecodeChanges accepted %s input", tc.name)
			}
		})
	}

	// Structurally valid JSON with semantic nonsense decodes, but neither
	// replay path may panic or accept it silently.
	semantic := [][]byte{
		[]byte(`[{"lsn":1,"group":1,"kind":99,"oid":5,"class":"Cell"}]`),                             // unknown kind
		[]byte(`[{"lsn":1,"group":1,"kind":0,"oid":5,"class":"NoSuchClass"}]`),                       // unknown class
		[]byte(`[{"lsn":1,"group":1,"kind":1,"oid":5,"attr":"rev"}]`),                                // set on absent object
		[]byte(`[{"lsn":1,"group":1,"kind":2,"rel":"nope","from":1,"to":2}]`),                        // unknown rel
		[]byte(`[{"lsn":1,"group":1,"kind":4,"oid":77,"class":"Cell"}]`),                             // delete absent
		[]byte(`[{"lsn":1,"group":1,"kind":0,"oid":1,"class":"Cell","attrs":{"bogus":{"kind":0}}}]`), // unknown attr
	}
	for _, payload := range semantic {
		recs, err := DecodeChanges(payload)
		if err != nil {
			continue // also acceptable
		}
		if err := NewStore(schema).ReplayChanges(recs); err == nil {
			t.Fatalf("ReplayChanges accepted %s", payload)
		}
		if err := NewStore(schema).ApplyReplicated(recs); err == nil {
			t.Fatalf("ApplyReplicated accepted %s", payload)
		}
	}
}

// TestApplyReplicatedGapDetection: a suffix that does not attach to the
// store's watermark is rejected whole — ErrFeedGap, nothing applied.
func TestApplyReplicatedGapDetection(t *testing.T) {
	schema := feedSchema(t)
	primary := NewStore(schema)
	if _, err := primary.Create("Cell", map[string]Value{"name": S("a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Create("Cell", map[string]Value{"name": S("b")}); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Create("Cell", map[string]Value{"name": S("c")}); err != nil {
		t.Fatal(err)
	}
	recs, ok := primary.Changes(0)
	if !ok {
		t.Fatal("changes incomplete")
	}

	follower := NewStore(schema)
	// Skipping the first record must be detected before anything applies.
	if err := follower.ApplyReplicated(recs[1:]); err == nil {
		t.Fatal("gap accepted")
	}
	if follower.Count("") != 0 || follower.FeedLSN() != 0 {
		t.Fatal("gapped suffix partially applied")
	}
	// A non-contiguous run inside the suffix is rejected too.
	holed := []Change{recs[0], recs[2]}
	if err := follower.ApplyReplicated(holed); err == nil {
		t.Fatal("holed suffix accepted")
	}
	if follower.Count("") != 0 {
		t.Fatal("holed suffix partially applied")
	}
	// The correct suffix applies and mirrors the primary's LSNs.
	if err := follower.ApplyReplicated(recs); err != nil {
		t.Fatal(err)
	}
	if follower.FeedLSN() != primary.FeedLSN() {
		t.Fatalf("follower at %d, primary at %d", follower.FeedLSN(), primary.FeedLSN())
	}
	if got, want := fingerprint(t, follower), fingerprint(t, primary); got != want {
		t.Fatal("fingerprint mismatch")
	}
}

// TestResetFromSnapshot: the whole-store swap installs the snapshot
// state, rebases the feed, and rejects corrupt payloads untouched.
func TestResetFromSnapshot(t *testing.T) {
	schema := feedSchema(t)
	primary := NewStore(schema)
	cell, err := primary.Create("Cell", map[string]Value{"name": S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := primary.Set(cell, "rev", I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := primary.Snapshot()
	data, err := snap.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}

	follower := NewStore(schema)
	if _, err := follower.Create("Cell", map[string]Value{"name": S("stale")}); err != nil {
		t.Fatal(err)
	}
	if err := follower.ResetFromSnapshot(data, snap.LSN()); err != nil {
		t.Fatal(err)
	}
	if follower.FeedLSN() != snap.LSN() {
		t.Fatalf("feed at %d, want %d", follower.FeedLSN(), snap.LSN())
	}
	if got, want := fingerprint(t, follower), fingerprint(t, primary); got != want {
		t.Fatal("fingerprint mismatch after reset")
	}
	// The pre-reset object is gone, and the follower can tail from here.
	if n := len(follower.FindByAttr("Cell", "name", S("stale"))); n != 0 {
		t.Fatal("stale object survived reset")
	}
	if err := primary.Set(cell, "rev", I(99)); err != nil {
		t.Fatal(err)
	}
	tail, ok := primary.Changes(snap.LSN())
	if !ok {
		t.Fatal("tail incomplete")
	}
	if err := follower.ApplyReplicated(tail); err != nil {
		t.Fatal(err)
	}
	if got := follower.GetInt(cell, "rev"); got != 99 {
		t.Fatalf("tail not applied: rev=%d", got)
	}

	// Corrupt payloads leave the store untouched.
	before := fingerprint(t, follower)
	if err := follower.ResetFromSnapshot([]byte("{torn"), 7); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if fingerprint(t, follower) != before {
		t.Fatal("failed reset mutated the store")
	}
	// And a store with an open transaction refuses the swap.
	if err := follower.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := follower.ResetFromSnapshot(data, snap.LSN()); err == nil || !strings.Contains(err.Error(), "transaction") {
		t.Fatalf("reset during transaction: %v", err)
	}
	if err := follower.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeChanges: decode arbitrary bytes; whatever decodes must
// replay (or be rejected) without panicking on a fresh store.
func FuzzDecodeChanges(f *testing.F) {
	valid := wirePayload(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"lsn":1,"group":1,"kind":0,"oid":1,"class":"Cell"}]`))
	f.Add([]byte(`[{"lsn":1,"group":1,"kind":99}]`))
	f.Add([]byte(`{"lsn":1}`))
	f.Add([]byte("\xFF\x00 not json"))
	schema := feedSchema(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeChanges(data)
		if err != nil {
			return
		}
		_ = NewStore(schema).ReplayChanges(recs)
		_ = NewStore(schema).ApplyReplicated(recs)
	})
}
