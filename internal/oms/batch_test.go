package oms

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// storeFingerprint captures everything observable about the store so tests
// can assert a failed batch left no trace at all.
func storeFingerprint(st *Store) string {
	var b strings.Builder
	for _, oid := range st.All("") {
		class, _ := st.ClassOf(oid)
		fmt.Fprintf(&b, "obj %d %s", oid, class)
		for _, attr := range []string{"name", "rev", "published", "data", "num"} {
			if v, ok, err := st.Get(oid, attr); err == nil && ok {
				fmt.Fprintf(&b, " %s=%s", attr, v.String())
			}
		}
		b.WriteString("\n")
	}
	for _, rel := range st.Schema().Rels() {
		for _, p := range st.Related(rel) {
			fmt.Fprintf(&b, "link %s %d->%d\n", rel, p.From, p.To)
		}
	}
	return b.String()
}

func TestBatchPlaceholderResolution(t *testing.T) {
	st := NewStore(testSchema(t))
	b := NewBatch()
	cell := b.Create("Cell", map[string]Value{"name": S("alu")})
	v1 := b.Create("Version", map[string]Value{"num": I(1)})
	v2 := b.Create("Version", map[string]Value{"num": I(2)})
	b.Link("hasVersion", cell, v1)
	b.Link("hasVersion", cell, v2)
	b.Set(cell, "rev", I(7))
	created, err := st.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 3 {
		t.Fatalf("created %d objects, want 3", len(created))
	}
	if cell != -1 || v1 != -2 || v2 != -3 {
		t.Fatalf("placeholders = %d,%d,%d, want -1,-2,-3", cell, v1, v2)
	}
	realCell := created[0]
	if got := st.GetInt(realCell, "rev"); got != 7 {
		t.Fatalf("rev = %d, want 7", got)
	}
	ts := st.Targets("hasVersion", realCell)
	if len(ts) != 2 || ts[0] != created[1] && ts[0] != created[2] {
		t.Fatalf("hasVersion targets = %v, want %v", ts, created[1:])
	}
	// Placeholders may also mix with real OIDs in one batch.
	b2 := NewBatch()
	v3 := b2.Create("Version", map[string]Value{"num": I(3)})
	b2.Link("hasVersion", realCell, v3)
	created2, err := st.Apply(b2)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Targets("hasVersion", realCell); len(got) != 3 {
		t.Fatalf("after second batch: %d versions, want 3", len(got))
	}
	if !st.Exists(created2[0]) {
		t.Fatal("second batch's version missing")
	}
}

func TestBatchAllOrNothing(t *testing.T) {
	st := NewStore(testSchema(t))
	cell := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu"), "rev": I(1)})
	vOld := mustCreate(t, st, "Version", map[string]Value{"num": I(1)})
	if err := st.Link("hasVersion", cell, vOld); err != nil {
		t.Fatal(err)
	}
	before := storeFingerprint(st)
	opsBefore, _, _ := st.Stats()

	// Everything before the failing op must be rolled back: a fresh
	// version, its link, an attribute flip, an unlink of a live link.
	b := NewBatch()
	v := b.Create("Version", map[string]Value{"num": I(2)})
	b.Link("hasVersion", cell, v)
	b.Set(cell, "rev", I(99))
	b.Unlink("hasVersion", cell, vOld)
	b.Link("hasVersion", OID(777777), v) // no such object: the batch dies here
	if _, err := st.Apply(b); err == nil {
		t.Fatal("batch with dangling link applied")
	}
	if after := storeFingerprint(st); after != before {
		t.Fatalf("failed batch left a trace:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if ops, _, _ := st.Stats(); ops <= opsBefore {
		// Rolled-back ops still count as performed operations (they ran);
		// this just pins that the counter moved, i.e. ops really executed
		// before the rollback.
		t.Fatalf("stats did not move (ops %d -> %d); did the batch run at all?", opsBefore, ops)
	}
}

func TestBatchValidationFailsBeforeAnyOp(t *testing.T) {
	st := NewStore(testSchema(t))
	before := storeFingerprint(st)
	opsBefore, _, _ := st.Stats()
	for _, tc := range []struct {
		name  string
		build func() *Batch
	}{
		{"unknown class", func() *Batch {
			b := NewBatch()
			b.Create("Nope", nil)
			return b
		}},
		{"missing required attr", func() *Batch {
			b := NewBatch()
			b.Create("Cell", nil)
			return b
		}},
		{"wrong attr kind", func() *Batch {
			b := NewBatch()
			b.Create("Cell", map[string]Value{"name": I(3)})
			return b
		}},
		{"unknown rel", func() *Batch {
			b := NewBatch()
			b.Link("nope", 1, 2)
			return b
		}},
		{"forward placeholder", func() *Batch {
			b := NewBatch()
			b.Link("hasVersion", -1, -2) // references creates that don't exist yet
			b.Create("Cell", map[string]Value{"name": S("x")})
			b.Create("Version", map[string]Value{"num": I(1)})
			return b
		}},
		{"missing copy-in file", func() *Batch {
			b := NewBatch()
			c := b.Create("Cell", map[string]Value{"name": S("x")})
			b.CopyIn(c, "data", "/no/such/file")
			return b
		}},
	} {
		if _, err := st.Apply(tc.build()); err == nil {
			t.Fatalf("%s: batch applied", tc.name)
		}
	}
	if after := storeFingerprint(st); after != before {
		t.Fatalf("validation failure left a trace:\n%s", after)
	}
	if ops, _, _ := st.Stats(); ops != opsBefore {
		t.Fatalf("validation failure executed ops: %d -> %d", opsBefore, ops)
	}
}

func TestBatchDeleteAndRollback(t *testing.T) {
	st := NewStore(testSchema(t))
	cell := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu")})
	v := mustCreate(t, st, "Version", map[string]Value{"num": I(1)})
	if err := st.Link("hasVersion", cell, v); err != nil {
		t.Fatal(err)
	}
	before := storeFingerprint(st)

	// Failed batch: the delete (and its link detach) must be undone.
	b := NewBatch()
	b.Delete(v)
	b.Link("hasVersion", cell, OID(777777))
	if _, err := st.Apply(b); err == nil {
		t.Fatal("batch applied")
	}
	if after := storeFingerprint(st); after != before {
		t.Fatalf("rolled-back delete left a trace:\nbefore:\n%s\nafter:\n%s", before, after)
	}

	// Successful batch: delete + recreate in one atomic step.
	b2 := NewBatch()
	b2.Delete(v)
	nv := b2.Create("Version", map[string]Value{"num": I(2)})
	b2.Link("hasVersion", cell, nv)
	created, err := st.Apply(b2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Exists(v) {
		t.Fatal("deleted version still alive")
	}
	if ts := st.Targets("hasVersion", cell); len(ts) != 1 || ts[0] != created[0] {
		t.Fatalf("targets = %v, want [%d]", ts, created[0])
	}
}

func TestBatchInsideTransaction(t *testing.T) {
	st := NewStore(testSchema(t))
	cell := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu"), "rev": I(1)})
	base := storeFingerprint(st)

	// A batch applied inside a transaction is reverted by Rollback.
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	v := b.Create("Version", map[string]Value{"num": I(1)})
	b.Link("hasVersion", cell, v)
	b.Set(cell, "rev", I(5))
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := st.GetInt(cell, "rev"); got != 5 {
		t.Fatalf("rev inside tx = %d, want 5", got)
	}
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	if after := storeFingerprint(st); after != base {
		t.Fatalf("rollback did not revert the batch:\nbefore:\n%s\nafter:\n%s", base, after)
	}

	// A batch that fails inside a transaction undoes itself; the
	// transaction's other work survives until Commit.
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := st.Set(cell, "rev", I(2)); err != nil {
		t.Fatal(err)
	}
	fb := NewBatch()
	fb.Set(cell, "rev", I(42))
	fb.Link("hasVersion", cell, OID(777777))
	if _, err := st.Apply(fb); err == nil {
		t.Fatal("failing batch applied")
	}
	if got := st.GetInt(cell, "rev"); got != 2 {
		t.Fatalf("rev after failed batch = %d, want 2 (the tx's own set)", got)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := st.GetInt(cell, "rev"); got != 2 {
		t.Fatalf("rev after commit = %d, want 2", got)
	}

	// A batch applied then committed persists past a later transaction.
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	gb := NewBatch()
	gb.Set(cell, "rev", I(9))
	if _, err := st.Apply(gb); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := st.GetInt(cell, "rev"); got != 9 {
		t.Fatalf("rev after committed batch = %d, want 9", got)
	}
}

func TestBatchCopyIn(t *testing.T) {
	st := NewStore(testSchema(t))
	src := filepath.Join(t.TempDir(), "design.dat")
	payload := []byte("netlist bytes")
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	cell := b.Create("Cell", map[string]Value{"name": S("alu")})
	b.CopyIn(cell, "data", src)
	created, err := st.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Get(created[0], "data")
	if err != nil || !ok {
		t.Fatalf("data attr: ok=%v err=%v", ok, err)
	}
	if string(v.Blob) != string(payload) {
		t.Fatalf("data = %q, want %q", v.Blob, payload)
	}
}

func TestBatchMisuse(t *testing.T) {
	st := NewStore(testSchema(t))
	// Empty and nil batches are no-ops.
	if created, err := st.Apply(nil); err != nil || created != nil {
		t.Fatalf("nil batch: %v %v", created, err)
	}
	if created, err := st.Apply(NewBatch()); err != nil || created != nil {
		t.Fatalf("empty batch: %v %v", created, err)
	}
	// A batch is one-shot.
	b := NewBatch()
	b.Create("Cell", map[string]Value{"name": S("x")})
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(b); err == nil {
		t.Fatal("batch applied twice")
	}
	// Staged values are copies: mutating the caller's map or blob after
	// staging must not leak into the store.
	attrs := map[string]Value{"name": S("y"), "data": Bytes([]byte("abc"))}
	b2 := NewBatch()
	c := b2.Create("Cell", attrs)
	_ = c
	attrs["name"] = S("mutated")
	attrs["data"].Blob[0] = 'X'
	created, err := st.Apply(b2)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.GetString(created[0], "name"); got != "y" {
		t.Fatalf("name = %q: staged attrs alias the caller's map", got)
	}
	if v, _, _ := st.Get(created[0], "data"); string(v.Blob) != "abc" {
		t.Fatalf("data = %q: staged blob aliases the caller's bytes", v.Blob)
	}
}

// TestBatchAtomicUnderConcurrency is the conformance-style -race test of
// the acceptance criteria: goroutines apply version-checkin-shaped batches
// (create + link + set), half of them induced to fail on their last op,
// while others read. At every instant and at the end, no Version object
// may exist without both its hasVersion link and its num attribute — a
// torn batch would leave exactly such an orphan.
func TestBatchAtomicUnderConcurrency(t *testing.T) {
	st := NewStore(testSchema(t))
	const designers = 8
	cells := make([]OID, designers)
	for i := range cells {
		cells[i] = mustCreate(t, st, "Cell", map[string]Value{"name": S(fmt.Sprintf("c%d", i))})
	}
	var wg, obsWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent observer: every Version it can see must be linked.
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, v := range st.All("Version") {
				if len(st.Sources("hasVersion", v)) == 0 {
					t.Errorf("observed orphan version %d", v)
					return
				}
			}
		}
	}()
	const wantPerDesigner = 25
	for d := 0; d < designers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b := NewBatch()
				v := b.Create("Version", map[string]Value{"num": I(int64(i))})
				b.Link("hasVersion", cells[d], v)
				b.Set(cells[d], "rev", I(int64(i)))
				if i%2 == 1 {
					b.Link("hasVersion", OID(888888), v) // induced failure
				}
				_, err := st.Apply(b)
				if (err == nil) != (i%2 == 0) {
					t.Errorf("designer %d batch %d: err=%v", d, i, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	close(stop)
	obsWG.Wait()
	if t.Failed() {
		return
	}
	if got := st.Count("Version"); got != designers*wantPerDesigner {
		t.Fatalf("%d versions survive, want %d", got, designers*wantPerDesigner)
	}
	for _, v := range st.All("Version") {
		if len(st.Sources("hasVersion", v)) != 1 {
			t.Fatalf("version %d has %d owners", v, len(st.Sources("hasVersion", v)))
		}
	}
}
