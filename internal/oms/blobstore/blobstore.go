package blobstore

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
	"sync"

	"repro/internal/obs"
	"repro/internal/oms/backend"
)

// ErrNotFound reports a ref whose blob is neither local nor fetchable.
var ErrNotFound = errors.New("blobstore: blob not found")

// Fetcher pulls a missing blob from elsewhere — a replica wires this to
// a blobfetch round-trip on its replication connection. The returned
// bytes are digest-verified by the store before being served or cached,
// so a lying peer cannot poison the CAS.
type Fetcher func(Ref) ([]byte, error)

// Option configures a Store.
type Option func(*Store)

// WithUploadWorkers bounds the number of concurrent async uploads
// (default defaultUploadWorkers). PutAsync callers never block on the
// bound; queued uploads wait for a slot.
func WithUploadWorkers(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.workers = make(chan struct{}, n)
		}
	}
}

const defaultUploadWorkers = 4

// upload is one in-flight backend write of a digest; duplicate writers
// of the same content wait on done instead of writing twice.
type upload struct {
	done chan struct{}
	err  error // written before close(done), read only after <-done
}

// Store is a content-addressed blob store on a backend.Backend.
//
// Concurrency: mu guards only the in-memory maps and is a leaf — no
// backend I/O, no other lock, and no channel operation happens under it.
// Backend writes are serialized per digest through the inflight map, so
// concurrent Puts of identical content store it exactly once. sweepMu is
// the sweep fence (see Sweep); it is ordered strictly above mu.
type Store struct {
	be      backend.Backend
	workers chan struct{} // async upload slots

	// sweepMu fences pin releases against the GC. Sweep holds it
	// exclusively from its live-set scan through victim selection; Unpin
	// acquires it shared. Every ref is pinned from before its backend
	// write until after its metadata commit, so fencing the unpin means a
	// digest observed unpinned during selection had its metadata commit
	// finish before the live scan started — the scan saw the ref, and the
	// live set can never be stale for a committed blob.
	sweepMu sync.RWMutex

	mu       sync.Mutex // leaf: guards the maps below only
	have     map[[32]byte]struct{}
	inflight map[[32]byte]*upload
	pinned   map[[32]byte]int
	// condemned holds the digests a running Sweep has selected and not
	// yet deleted from the backend. A commit of a condemned digest waits
	// on the sweep's gate channel and then rewrites, so a re-checkin of
	// just-collected content can never have its fresh backend write
	// destroyed by the sweep's trailing Delete.
	condemned map[[32]byte]chan struct{}
	fetcher   Fetcher

	// Counters and gauges are obs cells — pure atomics, so Stats() and a
	// /metrics scrape read them without touching mu (a scrape can never
	// block an upload), and RegisterMetrics exposes the same cells.
	statPhysical  obs.Counter // bytes actually written to the backend (post-dedup)
	statLogical   obs.Counter // bytes handed to the put paths (pre-dedup)
	statDedupHits obs.Counter // puts satisfied by an existing or in-flight copy
	statFetched   obs.Counter // bytes pulled through the fetcher
	statSwept     obs.Counter // entries removed by Sweep
	haveCount     obs.Gauge   // mirrors len(have); maintained under mu
	queueDepth    obs.Gauge   // PutAsync uploads registered and not yet settled
	inflightUp    obs.Gauge   // uploads holding a worker slot right now
	uploadNs      obs.Histogram
	sweepNs       obs.Histogram
}

// New opens a store on be and rebuilds the in-memory index from the
// backend listing — the only persistent state is the blobs themselves.
func New(be backend.Backend, opts ...Option) (*Store, error) {
	s := &Store{
		be:        be,
		workers:   make(chan struct{}, defaultUploadWorkers),
		have:      make(map[[32]byte]struct{}),
		inflight:  make(map[[32]byte]*upload),
		pinned:    make(map[[32]byte]int),
		condemned: make(map[[32]byte]chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	names, err := be.List()
	if err != nil {
		return nil, fmt.Errorf("blobstore: rebuilding index: %w", err)
	}
	for _, name := range names {
		if d, ok := parseKey(name); ok {
			s.have[d] = struct{}{}
		}
	}
	s.haveCount.Update(int64(len(s.have)))
	return s, nil
}

// SetFetcher installs the lazy-fetch hook for misses. Set once, during
// wiring, before concurrent readers exist.
func (s *Store) SetFetcher(f Fetcher) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fetcher = f
}

// Has reports whether the blob is present locally (without fetching).
func (s *Store) Has(r Ref) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.have[r.Digest]
	return ok
}

// Count returns the number of locally stored blobs. It reads the
// atomic mirror of the index size, so callers (scrapes, the follow
// loop) never contend on the hot path's mutex.
func (s *Store) Count() int {
	return int(s.haveCount.Load())
}

// Pin marks a digest live for Sweep regardless of the caller's live set,
// covering the window from before a blob lands in the CAS until its ref
// has committed to metadata. Pins nest; balance each Pin with one Unpin.
// The Sweep contract requires the pin to be taken BEFORE the backend
// write (PutBytesPinned and PutAsync do this) and released only after
// the metadata commit has resolved.
func (s *Store) Pin(r Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pinned[r.Digest]++
}

// Unpin releases one Pin. It passes through the sweep fence: an unpin
// never lands between a running Sweep's live-set scan and its victim
// selection, which is what makes the scan trustworthy (see sweepMu).
// Callers must not hold the store's other locks, and a Sweep's scanLive
// callback must not unpin (it would self-deadlock on the fence).
func (s *Store) Unpin(r Ref) {
	s.sweepMu.RLock()
	defer s.sweepMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pinned[r.Digest]--; s.pinned[r.Digest] <= 0 {
		delete(s.pinned, r.Digest)
	}
}

// PutBytes stores data and returns its ref. Duplicate content is
// detected before any backend write. The blob is NOT pinned — callers
// that intend to commit the ref to metadata must use PutBytesPinned so
// the liveness sweep cannot collect the blob before the ref is visible.
func (s *Store) PutBytes(data []byte) (Ref, error) {
	ref := RefOf(data)
	s.statLogical.Add(int64(len(data)))
	if err := s.commit(ref, data); err != nil {
		return Ref{}, err
	}
	return ref, nil
}

// PutBytesPinned stores data with its ref pinned BEFORE any backend
// write — the ordering the Sweep contract demands, closing the window
// where a blob is durable but neither pinned, in-flight, nor reachable.
// The returned release func drops the pin; call it exactly once, after
// the ref's metadata commit has resolved (either way — a failed commit
// just leaves an orphan for the next sweep).
func (s *Store) PutBytesPinned(data []byte) (Ref, func(), error) {
	ref := RefOf(data)
	s.statLogical.Add(int64(len(data)))
	s.Pin(ref)
	if err := s.commit(ref, data); err != nil {
		s.Unpin(ref)
		return Ref{}, nil, err
	}
	return ref, func() { s.Unpin(ref) }, nil
}

// Put streams r into the store, hashing while copying.
func (s *Store) Put(r io.Reader) (Ref, error) {
	w := s.NewWriter()
	defer w.Close()
	if _, err := io.Copy(w, r); err != nil {
		return Ref{}, err
	}
	return w.Commit()
}

// PutAsync computes the ref synchronously — callers need it for the
// metadata commit — and uploads on a bounded worker pool. The blob is
// pinned against Sweep before PutAsync returns; the caller owns that pin
// and must call the returned release func exactly once, after its
// metadata commit has resolved. (The store cannot release it itself:
// the upload may finish before the caller's commit, and an unpinned,
// uncommitted blob is exactly what Sweep is allowed to eat.) cb receives
// the upload outcome exactly once (nil on success, including dedup hits).
func (s *Store) PutAsync(data []byte, cb func(error)) (Ref, func()) {
	ref := RefOf(data)
	s.statLogical.Add(int64(len(data)))
	s.Pin(ref)
	s.queueDepth.Inc()
	go func() {
		s.workers <- struct{}{}
		s.inflightUp.Inc()
		defer func() {
			s.inflightUp.Dec()
			s.queueDepth.Dec()
			<-s.workers
		}()
		err := s.commit(ref, data)
		if cb != nil {
			cb(err)
		}
	}()
	return ref, func() { s.Unpin(ref) }
}

// commit is the single write path: dedup against stored and in-flight
// copies, then one backend.Put outside mu.
func (s *Store) commit(ref Ref, data []byte) error {
	if int64(len(data)) > MaxBlobSize {
		return fmt.Errorf("blobstore: %d bytes exceeds %d-byte blob limit", len(data), MaxBlobSize)
	}
	for {
		s.mu.Lock()
		if gate, ok := s.condemned[ref.Digest]; ok {
			// A sweep selected this digest and its backend Delete is still
			// pending. Writing now could be destroyed by that Delete; wait
			// it out and rewrite from scratch.
			s.mu.Unlock()
			<-gate
			continue
		}
		if _, ok := s.have[ref.Digest]; ok {
			s.mu.Unlock()
			s.statDedupHits.Add(1)
			return nil
		}
		if up, ok := s.inflight[ref.Digest]; ok {
			s.mu.Unlock()
			<-up.done
			if up.err == nil {
				s.statDedupHits.Add(1)
				return nil
			}
			continue // the racing writer failed; try to claim the slot
		}
		up := &upload{done: make(chan struct{})}
		s.inflight[ref.Digest] = up
		s.mu.Unlock()

		upStart := obs.Now()
		err := s.be.Put(ref.Key(), data)
		s.uploadNs.Since(upStart)
		s.mu.Lock()
		delete(s.inflight, ref.Digest)
		if err == nil {
			s.have[ref.Digest] = struct{}{}
			s.haveCount.Inc()
		}
		s.mu.Unlock()
		up.err = err
		close(up.done)
		if err == nil {
			s.statPhysical.Add(ref.Size)
		}
		return err
	}
}

// Get returns the blob for ref, fetching through the Fetcher on a local
// miss. The digest and size are verified before the bytes are served.
func (s *Store) Get(ref Ref) ([]byte, error) {
	s.mu.Lock()
	_, local := s.have[ref.Digest]
	fetch := s.fetcher
	s.mu.Unlock()
	if local {
		data, err := s.be.Get(ref.Key())
		if err != nil {
			return nil, fmt.Errorf("blobstore: reading %s: %w", ref, err)
		}
		if err := verify(ref, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	if fetch == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, ref)
	}
	data, err := fetch(ref)
	if err != nil {
		return nil, fmt.Errorf("blobstore: fetching %s: %w", ref, err)
	}
	if err := verify(ref, data); err != nil {
		return nil, fmt.Errorf("blobstore: fetched %s: %w", ref, err)
	}
	s.statFetched.Add(ref.Size)
	// Cache the verified copy so the next read is local. A commit failure
	// only costs the cache, not the read.
	if err := s.commit(ref, data); err != nil {
		return data, nil //lint:allow noerrdrop fetched bytes are already verified; caching is best-effort
	}
	return data, nil
}

// Verify reads the blob back and checks its digest — the load-time proof
// that a live ref resolves to the bytes it was committed with.
func (s *Store) Verify(ref Ref) error {
	_, err := s.Get(ref)
	return err
}

func verify(ref Ref, data []byte) error {
	if int64(len(data)) != ref.Size {
		return fmt.Errorf("blobstore: %s resolved to %d bytes", ref, len(data))
	}
	if sha256.Sum256(data) != ref.Digest {
		return fmt.Errorf("blobstore: digest mismatch reading %s", ref)
	}
	return nil
}

// Sweep removes every stored blob whose digest is neither reported live
// by scanLive nor pinned nor mid-upload, and returns how many were
// removed. scanLive recomputes the live set (every committed ref); nil
// means nothing is live. The caller owns the liveness contract: every
// ref it intends to commit must be pinned — from before the backend
// write until after the metadata commit (PutBytesPinned / PutAsync do
// this) — or already reachable via scanLive.
//
// Correctness of selection rests on the sweep fence: scanLive runs and
// victims are selected under sweepMu held exclusively, and Unpin takes
// sweepMu shared. So at selection time an unpinned digest had its last
// unpin — and therefore, by the pin contract, its metadata commit —
// happen before the scan started, meaning the scan saw the ref and the
// digest is in live. A stale live set can only ever spare a blob, never
// condemn a committed one. scanLive must not call back into the store's
// pin management (Unpin would self-deadlock on the fence).
//
// Selected victims stay "condemned" until their backend Delete has run;
// a racing commit of the same digest waits and then rewrites, so the
// trailing Delete can never destroy a fresh re-checkin's bytes.
func (s *Store) Sweep(scanLive func() map[[32]byte]bool) (int, error) {
	defer s.sweepNs.Since(obs.Now())
	names, err := s.be.List()
	if err != nil {
		return 0, fmt.Errorf("blobstore: sweep listing: %w", err)
	}
	s.sweepMu.Lock()
	var live map[[32]byte]bool
	if scanLive != nil {
		live = scanLive()
	}
	gate := make(chan struct{})
	var victims [][32]byte
	s.mu.Lock()
	for _, name := range names {
		d, ok := parseKey(name)
		if !ok || live[d] {
			continue
		}
		if _, ok := s.inflight[d]; ok {
			continue
		}
		if _, ok := s.condemned[d]; ok {
			continue // a concurrent sweep already owns this victim
		}
		if s.pinned[d] > 0 {
			continue
		}
		delete(s.have, d)
		s.haveCount.Dec()
		s.condemned[d] = gate
		victims = append(victims, d)
	}
	s.mu.Unlock()
	s.sweepMu.Unlock()
	removed := 0
	defer func() {
		// Lift the condemnations (even on a failed Delete — the blob is
		// garbage either way; a racing commit just rewrites it) and only
		// then open the gate, so woken commits see a clean map.
		s.mu.Lock()
		for _, d := range victims {
			delete(s.condemned, d)
		}
		s.mu.Unlock()
		close(gate)
		s.statSwept.Add(int64(removed))
	}()
	for _, d := range victims {
		if err := s.be.Delete(Ref{Digest: d}.Key()); err != nil {
			return removed, fmt.Errorf("blobstore: sweeping %x: %w", d[:6], err)
		}
		removed++
	}
	return removed, nil
}

// Stats is the store's observability surface.
type Stats struct {
	PhysicalBytes int64 // bytes written to the backend (post-dedup)
	DedupHits     int64 // puts satisfied without a write
	FetchedBytes  int64 // bytes pulled through the fetcher
	Swept         int64 // entries removed by Sweep
}

// Stats returns counters since construction. Pure atomic loads — no
// lock shared with the put/get paths.
func (s *Store) Stats() Stats {
	return Stats{
		PhysicalBytes: s.statPhysical.Load(),
		DedupHits:     s.statDedupHits.Load(),
		FetchedBytes:  s.statFetched.Load(),
		Swept:         s.statSwept.Load(),
	}
}

// RegisterMetrics exposes the CAS's instrument cells in reg — the same
// cells Stats reads, so the two views can never disagree. The dedup
// ratio is blob_logical_bytes_total / blob_physical_bytes_total.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("blob_logical_bytes_total", &s.statLogical)
	reg.RegisterCounter("blob_physical_bytes_total", &s.statPhysical)
	reg.RegisterCounter("blob_dedup_hits_total", &s.statDedupHits)
	reg.RegisterCounter("blob_fetched_bytes_total", &s.statFetched)
	reg.RegisterCounter("blob_swept_total", &s.statSwept)
	reg.RegisterGauge("blob_count", &s.haveCount)
	reg.RegisterGauge("blob_queue_depth", &s.queueDepth)
	reg.RegisterGauge("blob_inflight_uploads", &s.inflightUp)
	reg.RegisterHistogram("blob_upload_ns", &s.uploadNs)
	reg.RegisterHistogram("blob_sweep_ns", &s.sweepNs)
}

// Writer is a streaming, hashing put handle: Write accumulates and
// hashes, Commit stores under the computed digest, Close aborts an
// uncommitted write (and is a no-op after Commit) — so `defer w.Close()`
// is always correct, and releasepath enforces that no path leaks one.
type Writer struct {
	s    *Store
	h    hash.Hash
	buf  bytes.Buffer
	done bool
}

// NewWriter opens a streaming put. The caller must Close it on every
// path; Commit does not replace Close.
func (s *Store) NewWriter() *Writer {
	return &Writer{s: s, h: sha256.New()}
}

// Write hashes and buffers p.
func (w *Writer) Write(p []byte) (int, error) {
	if w.done {
		return 0, errors.New("blobstore: write on finished writer")
	}
	if int64(w.buf.Len())+int64(len(p)) > MaxBlobSize {
		return 0, fmt.Errorf("blobstore: blob exceeds %d-byte limit", MaxBlobSize)
	}
	w.h.Write(p) //lint:allow noerrdrop hash.Hash.Write never returns an error (stdlib contract)
	return w.buf.Write(p)
}

// Commit stores the accumulated bytes and returns their ref.
func (w *Writer) Commit() (Ref, error) {
	if w.done {
		return Ref{}, errors.New("blobstore: commit on finished writer")
	}
	w.done = true
	var ref Ref
	w.h.Sum(ref.Digest[:0])
	ref.Size = int64(w.buf.Len())
	if err := w.s.commit(ref, w.buf.Bytes()); err != nil {
		return Ref{}, err
	}
	return ref, nil
}

// Close aborts an uncommitted writer; after Commit it is a no-op.
func (w *Writer) Close() error {
	w.done = true
	w.buf.Reset()
	return nil
}

// Reader is a verified read handle: Open resolves and digest-checks the
// whole blob, Read streams from the verified copy, Close releases it.
type Reader struct {
	r      *bytes.Reader
	closed bool
}

// Open returns a reader over the blob, after fetching (if needed) and
// verifying it. The caller must Close it on every path.
func (s *Store) Open(ref Ref) (*Reader, error) {
	data, err := s.Get(ref)
	if err != nil {
		return nil, err
	}
	return &Reader{r: bytes.NewReader(data)}, nil
}

// Read streams the verified blob bytes.
func (r *Reader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, errors.New("blobstore: read on closed reader")
	}
	return r.r.Read(p)
}

// Close releases the handle.
func (r *Reader) Close() error {
	r.closed = true
	return nil
}
