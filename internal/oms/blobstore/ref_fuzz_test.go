package blobstore

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeBlobRef hardens the 40-byte blob-ref wire format — the
// payload of blobfetch frames and the smallest unit a hostile peer can
// hand us. Seeds cover the satellite corpus: a valid ref, truncated
// digests, and hostile size prefixes; the property is that every
// accepted input round-trips byte-identically and never yields a
// negative or over-limit size.
func FuzzDecodeBlobRef(f *testing.F) {
	valid := EncodeRef(RefOf([]byte("seed blob")))
	f.Add(valid)
	f.Add(valid[:31])             // truncated digest
	f.Add(valid[:39])             // truncated size
	f.Add([]byte{})               // empty
	f.Add(bytes.Repeat(valid, 2)) // oversized

	hostileSize := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(hostileSize[32:], 1<<63) // negative as int64
	f.Add(hostileSize)
	hugeSize := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(hugeSize[32:], MaxBlobSize+1)
	f.Add(hugeSize)
	zeroSize := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(zeroSize[32:], 0)
	f.Add(zeroSize)

	f.Fuzz(func(t *testing.T, data []byte) {
		ref, err := DecodeRef(data)
		if err != nil {
			return
		}
		if ref.Size < 0 || ref.Size > MaxBlobSize {
			t.Fatalf("decoder accepted hostile size %d", ref.Size)
		}
		// Round trip is byte-identical: the wire form is canonical.
		if again := EncodeRef(ref); !bytes.Equal(again, data) {
			t.Fatalf("re-encode differs:\n in %x\nout %x", data, again)
		}
		// And the hex path agrees with the binary path.
		viaHex, err := ParseHexRef(ref.Hex(), ref.Size)
		if err != nil || viaHex != ref {
			t.Fatalf("hex path diverged: %v %v", viaHex, err)
		}
	})
}
