package blobstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/oms/backend"
)

func openStore(t *testing.T) (*Store, *backend.File) {
	t.Helper()
	be, err := backend.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(be)
	if err != nil {
		t.Fatal(err)
	}
	return s, be
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := openStore(t)
	data := []byte("a netlist of modest ambition")
	ref, err := s.PutBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Size != int64(len(data)) {
		t.Fatalf("ref size %d, want %d", ref.Size, len(data))
	}
	got, err := s.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	if !s.Has(ref) {
		t.Fatal("Has reports stored blob missing")
	}
}

func TestDedupSingleWrite(t *testing.T) {
	s, _ := openStore(t)
	data := bytes.Repeat([]byte("dedup"), 1000)
	r1, err := s.PutBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.PutBytes(append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("identical content produced different refs: %v vs %v", r1, r2)
	}
	st := s.Stats()
	if st.PhysicalBytes != int64(len(data)) {
		t.Fatalf("physical bytes %d, want one copy (%d)", st.PhysicalBytes, len(data))
	}
	if st.DedupHits != 1 {
		t.Fatalf("dedup hits %d, want 1", st.DedupHits)
	}
	if s.Count() != 1 {
		t.Fatalf("store holds %d blobs, want 1", s.Count())
	}
}

func TestConcurrentIdenticalPuts(t *testing.T) {
	s, _ := openStore(t)
	data := bytes.Repeat([]byte("race"), 4096)
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.PutBytes(data)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if st := s.Stats(); st.PhysicalBytes != int64(len(data)) {
		t.Fatalf("physical bytes %d after %d identical puts, want %d", st.PhysicalBytes, writers, len(data))
	}
}

func TestWriterStreamingAndAbort(t *testing.T) {
	s, _ := openStore(t)
	w := s.NewWriter()
	defer w.Close()
	if _, err := w.Write([]byte("part one ")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("part two")); err != nil {
		t.Fatal(err)
	}
	ref, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	want := RefOf([]byte("part one part two"))
	if ref != want {
		t.Fatalf("streamed ref %v, want %v", ref, want)
	}

	// An aborted writer stores nothing.
	w2 := s.NewWriter()
	if _, err := w2.Write([]byte("never committed")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Has(RefOf([]byte("never committed"))) {
		t.Fatal("aborted writer leaked a blob")
	}
	if _, err := w2.Commit(); err == nil {
		t.Fatal("commit after close should fail")
	}
}

func TestPutStreamAndOpen(t *testing.T) {
	s, _ := openStore(t)
	data := bytes.Repeat([]byte{0xAB}, 1<<16)
	ref, err := s.Put(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Open(ref)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, len(data))
	if _, err := r.Read(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Open served different bytes")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(got); err == nil {
		t.Fatal("read after close should fail")
	}
}

func TestDigestVerifiedOnRead(t *testing.T) {
	s, be := openStore(t)
	ref, err := s.PutBytes([]byte("pristine content"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the backend copy behind the store's back.
	if err := be.Put(ref.Key(), []byte("tampered content!")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); err == nil {
		t.Fatal("Get served corrupted bytes without error")
	}
	if err := s.Verify(ref); err == nil {
		t.Fatal("Verify passed corrupted blob")
	}
}

func TestIndexRebuildOnLoad(t *testing.T) {
	dir := t.TempDir()
	be, err := backend.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(be)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s1.PutBytes([]byte("persisted across opens"))
	if err != nil {
		t.Fatal(err)
	}
	// A fresh store on the same backend sees the blob via List alone.
	be2, err := backend.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(be2)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(ref) {
		t.Fatal("rebuilt index lost the blob")
	}
	got, err := s2.Get(ref)
	if err != nil || !bytes.Equal(got, []byte("persisted across opens")) {
		t.Fatalf("rebuilt store read: %q, %v", got, err)
	}
	// Foreign names on the shared backend are not confused for blobs.
	if err := be2.Put("oms@7", []byte("epoch payload")); err != nil {
		t.Fatal(err)
	}
	s3, err := New(be2)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Count() != 1 {
		t.Fatalf("index counted foreign names: %d", s3.Count())
	}
}

func TestPutAsyncDeliversAndDedups(t *testing.T) {
	s, _ := openStore(t)
	data := bytes.Repeat([]byte("async"), 2048)
	done := make(chan error, 2)
	ref, release := s.PutAsync(data, func(err error) { done <- err })
	if ref != RefOf(data) {
		t.Fatal("PutAsync returned wrong ref")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The upload is durable but the caller's pin is still held: a sweep
	// with an empty live set must not touch it until release.
	if n, err := s.Sweep(nil); err != nil || n != 0 {
		t.Fatalf("sweep collected an unreleased async put: n=%d err=%v", n, err)
	}
	release()
	// Second async put of the same content is a dedup hit.
	_, release2 := s.PutAsync(append([]byte(nil), data...), func(err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	release2()
	st := s.Stats()
	if st.PhysicalBytes != int64(len(data)) || st.DedupHits != 1 {
		t.Fatalf("async stats: physical %d dedup %d", st.PhysicalBytes, st.DedupHits)
	}
}

func TestPutBytesPinnedProtectsUntilRelease(t *testing.T) {
	s, _ := openStore(t)
	ref, release, err := s.PutBytesPinned([]byte("pinned before the backend write"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Sweep(nil); err != nil || n != 0 {
		t.Fatalf("sweep collected a pinned put: n=%d err=%v", n, err)
	}
	if !s.Has(ref) {
		t.Fatal("pinned blob missing")
	}
	release()
	if n, err := s.Sweep(nil); err != nil || n != 1 {
		t.Fatalf("post-release sweep: n=%d err=%v", n, err)
	}
}

func TestSweepRemovesOnlyDeadBlobs(t *testing.T) {
	s, be := openStore(t)
	live, err := s.PutBytes([]byte("still referenced"))
	if err != nil {
		t.Fatal(err)
	}
	orphan, err := s.PutBytes([]byte("crashed before metadata commit"))
	if err != nil {
		t.Fatal(err)
	}
	pinnedRef, err := s.PutBytes([]byte("upload done, apply pending"))
	if err != nil {
		t.Fatal(err)
	}
	s.Pin(pinnedRef)

	scan := func() map[[32]byte]bool { return map[[32]byte]bool{live.Digest: true} }
	removed, err := s.Sweep(scan)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("swept %d, want 1", removed)
	}
	if !s.Has(live) || s.Has(orphan) || !s.Has(pinnedRef) {
		t.Fatalf("sweep kept wrong set: live=%v orphan=%v pinned=%v", s.Has(live), s.Has(orphan), s.Has(pinnedRef))
	}
	if _, err := be.Get(orphan.Key()); !errors.Is(err, backend.ErrNotFound) {
		t.Fatalf("orphan still on backend: %v", err)
	}
	// After the unpin the pinned blob is collectible like any other.
	s.Unpin(pinnedRef)
	if removed, err = s.Sweep(scan); err != nil || removed != 1 {
		t.Fatalf("post-unpin sweep: removed=%d err=%v", removed, err)
	}
}

// TestSweepCommitRace: a commit of content a concurrent sweep has
// condemned must wait out the sweep's backend Delete and rewrite, so the
// store can never report a blob present whose bytes the sweep destroyed.
func TestSweepCommitRace(t *testing.T) {
	s, be := openStore(t)
	data := []byte("contended content")
	ref := RefOf(data)
	for i := 0; i < 100; i++ {
		if _, err := s.PutBytes(data); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := s.Sweep(nil); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := s.PutBytes(data); err != nil {
				t.Error(err)
			}
		}()
		wg.Wait()
		if s.Has(ref) {
			if _, err := be.Get(ref.Key()); err != nil {
				t.Fatalf("round %d: store reports %s present but the bytes are gone: %v", i, ref, err)
			}
		}
		if _, err := s.Sweep(nil); err != nil { // reset for the next round
			t.Fatal(err)
		}
	}
}

func TestFetcherServesAndCachesMisses(t *testing.T) {
	remote, _ := openStore(t)
	payload := bytes.Repeat([]byte("remote design"), 512)
	ref, err := remote.PutBytes(payload)
	if err != nil {
		t.Fatal(err)
	}

	local, _ := openStore(t)
	fetches := 0
	local.SetFetcher(func(r Ref) ([]byte, error) {
		fetches++
		return remote.Get(r)
	})
	got, err := local.Get(ref)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("fetch miss: %v", err)
	}
	if _, err := local.Get(ref); err != nil {
		t.Fatal(err)
	}
	if fetches != 1 {
		t.Fatalf("fetched %d times, want 1 (second read must be local)", fetches)
	}

	// A lying fetcher is caught by digest verification.
	evil, _ := openStore(t)
	evil.SetFetcher(func(r Ref) ([]byte, error) { return []byte("not the real bytes"), nil })
	if _, err := evil.Get(ref); err == nil {
		t.Fatal("poisoned fetch served without error")
	}
	if evil.Has(ref) {
		t.Fatal("poisoned fetch was cached")
	}
}

func TestGetMissWithoutFetcher(t *testing.T) {
	s, _ := openStore(t)
	_, err := s.Get(RefOf([]byte("never stored")))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestSweepSkipsForeignNames(t *testing.T) {
	dir := t.TempDir()
	be, err := backend.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.Put("framework@3", []byte("epoch")); err != nil {
		t.Fatal(err)
	}
	s, err := New(be)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutBytes([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "framework@3")); err != nil {
		t.Fatalf("sweep touched a manifest epoch: %v", err)
	}
}

func TestRefEncoding(t *testing.T) {
	ref := RefOf([]byte("wire format"))
	buf := EncodeRef(ref)
	if len(buf) != EncodedRefSize {
		t.Fatalf("encoded %d bytes", len(buf))
	}
	back, err := DecodeRef(buf)
	if err != nil || back != ref {
		t.Fatalf("round trip: %v %v", back, err)
	}
	if _, err := DecodeRef(buf[:39]); err == nil {
		t.Fatal("truncated ref decoded")
	}
	parsed, err := ParseHexRef(ref.Hex(), ref.Size)
	if err != nil || parsed != ref {
		t.Fatalf("hex round trip: %v %v", parsed, err)
	}
	if _, err := ParseHexRef("zz", 1); err == nil {
		t.Fatal("bad hex parsed")
	}
	if _, err := ParseHexRef(ref.Hex(), -1); err == nil {
		t.Fatal("negative size parsed")
	}
	if d, ok := parseKey(ref.Key()); !ok || d != ref.Digest {
		t.Fatal("key parse failed")
	}
	if _, ok := parseKey("oms@12"); ok {
		t.Fatal("foreign name parsed as blob key")
	}
}
