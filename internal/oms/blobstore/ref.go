// Package blobstore is the content-addressed design-data store under the
// OMS: blobs are stored once per content (sha256), keyed by digest, on
// any backend.Backend. The OMS commits only a ~40-byte reference through
// its value/snapshot/feed/replication paths, so metadata traffic stops
// scaling with design size (ISSUE 9). Garbage is collected by liveness
// sweep — no refcounts to corrupt — and reads verify the digest, so a
// bit-rotted backend is detected, never silently served.
package blobstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// Ref identifies a blob by content: its sha256 digest and its size. The
// size rides along so metadata consumers (DataSize, quota accounting,
// frame sizing) never need to touch the bulk bytes.
type Ref struct {
	Digest [32]byte
	Size   int64
}

// EncodedRefSize is the wire size of an encoded Ref: 32 digest bytes
// followed by the size as a big-endian uint64.
const EncodedRefSize = 32 + 8

// MaxBlobSize caps a single blob (and therefore a decoded Ref's size
// field) at the transport's frame-payload ceiling. A hostile size prefix
// beyond it is rejected at decode time, before anyone allocates.
const MaxBlobSize = 1 << 30

// keyPrefix namespaces blob entries on a shared backend. The manifest GC
// in jcf deletes only its own oms@/framework@/delta@ epochs, and Sweep
// here deletes only blob- names, so the two collectors never collide.
const keyPrefix = "blob-"

// RefOf computes the reference for a byte slice.
func RefOf(data []byte) Ref {
	return Ref{Digest: sha256.Sum256(data), Size: int64(len(data))}
}

// EncodeRef encodes r into the fixed 40-byte wire form.
func EncodeRef(r Ref) []byte {
	buf := make([]byte, EncodedRefSize)
	copy(buf[:32], r.Digest[:])
	binary.BigEndian.PutUint64(buf[32:], uint64(r.Size))
	return buf
}

// DecodeRef parses the 40-byte wire form. Truncated or oversized input
// and hostile size prefixes (negative when read as int64, or beyond
// MaxBlobSize) are errors.
func DecodeRef(buf []byte) (Ref, error) {
	if len(buf) != EncodedRefSize {
		return Ref{}, fmt.Errorf("blobstore: ref must be %d bytes, got %d", EncodedRefSize, len(buf))
	}
	var r Ref
	copy(r.Digest[:], buf[:32])
	size := binary.BigEndian.Uint64(buf[32:])
	if size > MaxBlobSize {
		return Ref{}, fmt.Errorf("blobstore: ref size %d exceeds %d-byte blob limit", size, MaxBlobSize)
	}
	r.Size = int64(size)
	return r, nil
}

// Hex returns the digest as lowercase hex — the form carried inside
// oms.Value and snapshot/feed JSON.
func (r Ref) Hex() string { return hex.EncodeToString(r.Digest[:]) }

// Key returns the backend name the blob is stored under.
func (r Ref) Key() string { return keyPrefix + r.Hex() }

// String renders a short form for errors and logs.
func (r Ref) String() string { return fmt.Sprintf("blob %s.. (%d bytes)", r.Hex()[:12], r.Size) }

// ParseHexRef rebuilds a Ref from the hex digest + size pair carried in
// oms values and snapshots.
func ParseHexRef(hexDigest string, size int64) (Ref, error) {
	raw, err := hex.DecodeString(hexDigest)
	if err != nil || len(raw) != 32 {
		return Ref{}, fmt.Errorf("blobstore: bad digest %q", hexDigest)
	}
	if size < 0 || size > MaxBlobSize {
		return Ref{}, fmt.Errorf("blobstore: bad blob size %d", size)
	}
	var r Ref
	copy(r.Digest[:], raw)
	r.Size = size
	return r, nil
}

// parseKey inverts Ref.Key for index rebuilds and sweeps; ok is false
// for names that are not blob entries (manifests, epochs).
func parseKey(name string) (d [32]byte, ok bool) {
	hexPart, found := strings.CutPrefix(name, keyPrefix)
	if !found || len(hexPart) != 64 {
		return d, false
	}
	raw, err := hex.DecodeString(hexPart)
	if err != nil {
		return d, false
	}
	copy(d[:], raw)
	return d, true
}
