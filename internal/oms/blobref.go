package oms

import (
	"fmt"

	"repro/internal/oms/blobstore"
)

// Content-addressed blob spilling (ISSUE 9). With a blobstore attached,
// blob values at or above the spill threshold are stored once in the CAS
// during Apply's lock-free staging phase (or CopyIn, for the single-op
// path) and only a ~40-byte KindBlobRef rides through stripes, snapshots,
// deltas, the change feed and replication. Reads resolve the ref back to
// verified bytes transparently in CopyOut/BlobBytes.

// AttachBlobs wires a content-addressed blob store into the store and
// sets the spill threshold in bytes (0 disables spilling — useful on
// replicas, which only resolve refs). Wire-up only: call once before the
// store is shared.
func (st *Store) AttachBlobs(bs *blobstore.Store, spillAt int) {
	st.blobs = bs
	st.spillAt = spillAt
}

// Blobs returns the attached blob store, or nil.
func (st *Store) Blobs() *blobstore.Store { return st.blobs }

// shouldSpill reports whether v is a blob large enough to live in the CAS.
func (st *Store) shouldSpill(v Value) bool {
	return v.Kind == KindBlob && st.blobs != nil && st.spillAt > 0 && len(v.Blob) >= st.spillAt
}

// spill stores v's bytes in the CAS, pinned against Sweep from before
// the backend write until unpin is called (after the ref has committed —
// or failed to commit — to metadata), and returns the reference value.
// The pin-before-put ordering is the Sweep contract: there is never an
// instant where the blob is durable but unpinned and unreachable.
func (st *Store) spill(v Value) (ref Value, unpin func(), err error) {
	r, unpin, err := st.blobs.PutBytesPinned(v.Blob)
	if err != nil {
		return Value{}, nil, fmt.Errorf("oms: spilling %d-byte blob: %w", len(v.Blob), err)
	}
	return BlobRef(r), unpin, nil
}

// resolveBlob returns the bytes behind a blob-valued attribute: inline
// bytes as-is, references through the attached blobstore (digest-verified
// there, lazily fetched on a replica).
func (st *Store) resolveBlob(v Value) ([]byte, error) {
	switch v.Kind {
	case KindBlob:
		return v.Blob, nil
	case KindBlobRef:
		if st.blobs == nil {
			return nil, fmt.Errorf("oms: blob ref %s but no blob store attached", v)
		}
		r, err := v.AsBlobRef()
		if err != nil {
			return nil, err
		}
		data, err := st.blobs.Get(r)
		if err != nil {
			return nil, err
		}
		st.statBlobOut.Add(r.Size)
		return data, nil
	default:
		return nil, fmt.Errorf("oms: attribute holds %s, not blob data", v.Kind)
	}
}

// BlobBytes returns the design-data bytes of a blob attribute, resolving
// content-addressed references. The returned slice is private to the
// caller.
func (st *Store) BlobBytes(oid OID, attr string) ([]byte, error) {
	v, ok, err := st.Get(oid, attr)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("oms: object %d has no %q data", oid, attr)
	}
	return st.resolveBlob(v)
}

// ForEachBlobRef visits every KindBlobRef attribute value in the store —
// the live set of the blobstore GC sweep. Runs under the stripes'
// read locks; fn must not call back into the store.
func (st *Store) ForEachBlobRef(fn func(oid OID, attr string, r blobstore.Ref)) {
	st.forEachStripeRLocked(func(s *stripe) {
		for oid, obj := range s.objects {
			for name, v := range obj.attrs {
				if v.Kind != KindBlobRef {
					continue
				}
				if r, err := v.AsBlobRef(); err == nil {
					fn(oid, name, r)
				}
			}
		}
	})
}

// BlobStats reports the store's design-data accounting.
type BlobStats struct {
	LogicalIn  int64 // design bytes handed to the store (inline + spilled)
	PhysicalIn int64 // bytes actually written: inline copies + post-dedup CAS writes
	LogicalOut int64 // design bytes read back out
	DedupHits  int64 // CAS puts satisfied without a write
}

// BlobStatsNow returns the logical/physical split, so the dedup ratio is
// observable directly from the store.
func (st *Store) BlobStatsNow() BlobStats {
	bs := BlobStats{
		LogicalIn:  st.statBlobIn.Load(),
		PhysicalIn: st.statBlobPhys.Load(),
		LogicalOut: st.statBlobOut.Load(),
	}
	if st.blobs != nil {
		s := st.blobs.Stats()
		bs.PhysicalIn += s.PhysicalBytes
		bs.DedupHits = s.DedupHits
	}
	return bs
}

// noteBlobIn accounts one stored blob-carrying value: statBlobIn counts
// logical design bytes either way; statBlobPhys only the bytes written
// inline (the blobstore counts its own post-dedup writes).
func (st *Store) noteBlobIn(v Value) {
	switch v.Kind {
	case KindBlob:
		st.statBlobIn.Add(int64(len(v.Blob)))
		st.statBlobPhys.Add(int64(len(v.Blob)))
	case KindBlobRef:
		st.statBlobIn.Add(v.Int)
	}
}
