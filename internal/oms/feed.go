package oms

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrFeedGap reports that a replicated change sequence does not attach
// contiguously to the store's committed feed position — the stream
// skipped records. A consumer that sees it must resynchronize (reconnect
// with its applied LSN, or re-bootstrap from a snapshot); nothing has
// been applied.
var ErrFeedGap = errors.New("oms: change sequence does not attach to the feed position")

// The sequenced change feed.
//
// Every committed mutation of the store — single ops, whole Apply
// batches, and the compensating effects of a transaction rollback —
// emits Change records into an in-store ring log, stamped with a
// monotonic commit LSN. The LSN is assigned while the mutation still
// holds its stripe write locks, so the feed order is a valid
// serialization of the store's history: two conflicting operations
// serialize on a shared stripe and publish in that order, and
// non-conflicting operations commute. Replaying a feed suffix over a
// Snapshot of matching LSN therefore reproduces the live store exactly —
// the property the differential persistence layer (internal/jcf) and the
// coupling layer (internal/core) are built on.
//
// Groups: a batch (Store.Apply), a Delete (object removal plus every
// link detach), and a rollback's compensation commit as ONE contiguous
// group of records — published under a single feed-mutex hold, with the
// committed LSN advanced once, after the whole group is in the ring. A
// reader can therefore never observe a torn group: Changes and Watch
// only ever see group-complete prefixes, and Watch delivers each group
// as one message.
//
// Rollback does not rewrite history: the records a transaction published
// stay in the feed, and Rollback appends compensating records (delete
// for create, the old value for set, unlink for link, ...) in replay
// order. Consumers that replay the feed need no special rollback
// handling — the compensations are ordinary records.
//
// The ring is bounded (growing geometrically up to feedMaxRecords), so
// the feed pins at most that many records — including any blob Values
// they carry (blob bytes are shared with the store, immutable once
// stored, exactly like Snapshot sharing). A consumer that falls behind
// the ring's retention is told so: Changes reports incompleteness and a
// Watch subscription closes with Lagged() true, and the consumer falls
// back to a full snapshot.

// ChangeKind enumerates the feed record types.
type ChangeKind int

// Change kinds. ChangeSet with Cleared reports an attribute removal
// (only rollback compensation produces it — the public API has no unset).
const (
	ChangeCreate ChangeKind = iota
	ChangeSet
	ChangeLink
	ChangeUnlink
	ChangeDelete
)

// String returns the wire name of the kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeCreate:
		return "create"
	case ChangeSet:
		return "set"
	case ChangeLink:
		return "link"
	case ChangeUnlink:
		return "unlink"
	case ChangeDelete:
		return "delete"
	}
	return fmt.Sprintf("ChangeKind(%d)", int(k))
}

// Change is one sequenced feed record. Records handed to consumers are
// value copies, but Attrs (and blob Values) share backing storage with
// the feed and the store — consumers must treat them as read-only.
type Change struct {
	// LSN is the record's position in the commit sequence (1-based,
	// contiguous, never reused).
	LSN uint64
	// Group is the LSN of the first record of the record's commit group.
	// Single ops form a group of one (Group == LSN); a batch, a Delete's
	// cascade and a rollback's compensation share one Group.
	Group uint64

	Kind ChangeKind

	// OID and Class identify the target of Create, Set and Delete.
	OID   OID
	Class string

	// Attrs carries the initial attribute values of a Create.
	Attrs map[string]Value

	// Attr/Value carry a Set. Cleared means the attribute was removed.
	Attr    string
	Value   Value
	Cleared bool

	// Rel/From/To carry a Link or Unlink.
	Rel      string
	From, To OID
}

const (
	// feedInitRecords is the ring's starting capacity; it doubles on
	// demand until feedMaxRecords, so idle stores pay almost nothing.
	feedInitRecords = 256
	// feedMaxRecords bounds the ring: the retention window a consumer
	// may fall behind before it must resynchronize from a snapshot.
	feedMaxRecords = 1 << 15
	// feedMaxBlobBytes bounds the design-data bytes the ring may pin.
	// Records share blob backing arrays with the store (cheap to
	// publish), but unlike a Snapshot the ring is steady state: without
	// a byte bound, 32k retained checkin records of large design files
	// would pin gigabytes as feed history even with no consumer.
	// Crossing the bound evicts oldest records early — consumers see an
	// ordinary (explicit) retention miss and resynchronize.
	feedMaxBlobBytes = 64 << 20
)

// changeBlobBytes is the blob payload a retained record pins.
func changeBlobBytes(c Change) int {
	n := 0
	if c.Value.Kind == KindBlob {
		n += len(c.Value.Blob)
	}
	for _, v := range c.Attrs {
		if v.Kind == KindBlob {
			n += len(v.Blob)
		}
	}
	return n
}

// feed is the in-store ring log. Its mutex is a leaf lock like logMu:
// publish() is called while stripe write locks are held, and readers
// (Changes, Watch goroutines) take only feedMu.
type feed struct {
	mu   sync.Mutex
	cond *sync.Cond
	// buf holds records [start..last]; record L lives at buf[(L-1)%len].
	// len(buf) grows geometrically up to feedMaxRecords. The ring is
	// empty while last < start (start begins at 1).
	buf   []Change
	start uint64 // oldest retained LSN
	last  uint64 // highest committed LSN
	subs  int    // live Watch subscriptions (diagnostics)
	// blobBytes tracks the blob payload currently pinned by retained
	// records, for the feedMaxBlobBytes eviction bound.
	blobBytes int

	// Atomic mirrors of start/last/subs, stored under f.mu wherever the
	// guarded fields move, plus eviction/lag counters — the lock-free
	// source for FeedStats and /metrics, so a scrape never touches the
	// feed lock a commit is holding.
	startA    atomic.Uint64
	lastA     atomic.Uint64
	subsA     atomic.Int64
	evictions obs.Counter
	lagTrips  obs.Counter
}

func newFeed() *feed {
	f := &feed{start: 1}
	f.startA.Store(1)
	f.cond = sync.NewCond(&f.mu)
	return f
}

// publish appends one commit group, assigning contiguous LSNs. The
// caller holds the write locks of every stripe the group mutated, so
// the assigned order agrees with visibility order. The committed
// watermark (f.last) moves once, after the whole group is in the ring —
// that is what makes groups untearable.
func (f *feed) publish(group []Change) {
	if len(group) == 0 {
		return
	}
	f.mu.Lock()
	// Grow the ring before wrapping while it is still small.
	need := int(f.last+1-f.start) + len(group)
	for len(f.buf) < need && len(f.buf) < feedMaxRecords {
		f.grow()
	}
	first := f.last + 1
	for i := range group {
		lsn := first + uint64(i)
		group[i].LSN = lsn
		group[i].Group = first
		// A full ring overwrites its oldest record: account its blob
		// payload out before the slot is reused.
		if lsn-f.start >= uint64(len(f.buf)) {
			f.evictOldest()
		}
		f.buf[(lsn-1)%uint64(len(f.buf))] = group[i]
		f.blobBytes += changeBlobBytes(group[i])
		f.last = lsn
	}
	// The byte bound: shed oldest records until the pinned design data
	// fits (a single oversized group may evict itself — consumers then
	// resynchronize, which is the explicit contract).
	for f.blobBytes > feedMaxBlobBytes && f.start <= f.last {
		f.evictOldest()
	}
	f.lastA.Store(f.last)
	f.cond.Broadcast()
	f.mu.Unlock()
}

// publishAt appends one or more whole commit groups whose LSNs were
// assigned elsewhere — by a primary's feed — preserving them, so a
// follower store's feed mirrors the primary's commit sequence record for
// record (which is what lets a replica serve Watch consumers, anchor
// differential saves, and act as a publisher itself). The records must
// attach exactly at the committed watermark and be contiguous; a
// mismatch returns ErrFeedGap without touching the ring. The caller
// holds the write locks of every stripe the records mutated, exactly
// like publish.
func (f *feed) publishAt(group []Change) error {
	if len(group) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if group[0].LSN != f.last+1 {
		return fmt.Errorf("%w: records start at %d, feed is at %d", ErrFeedGap, group[0].LSN, f.last)
	}
	for i := range group {
		if group[i].LSN != group[0].LSN+uint64(i) {
			return fmt.Errorf("%w: record %d follows %d", ErrFeedGap, group[i].LSN, group[0].LSN+uint64(i)-1)
		}
	}
	need := int(f.last+1-f.start) + len(group)
	for len(f.buf) < need && len(f.buf) < feedMaxRecords {
		f.grow()
	}
	for i := range group {
		lsn := group[i].LSN
		if lsn-f.start >= uint64(len(f.buf)) {
			f.evictOldest()
		}
		f.buf[(lsn-1)%uint64(len(f.buf))] = group[i]
		f.blobBytes += changeBlobBytes(group[i])
		f.last = lsn
	}
	for f.blobBytes > feedMaxBlobBytes && f.start <= f.last {
		f.evictOldest()
	}
	f.lastA.Store(f.last)
	f.cond.Broadcast()
	return nil
}

// rebase empties the ring and repositions the committed watermark at
// lsn — the feed of a store whose whole content was just replaced by a
// base snapshot cut at that LSN. Live subscriptions wake: ones whose
// cursor no longer attaches (the usual case after a re-bootstrap) close
// with Lagged() true and their consumers resynchronize.
func (f *feed) rebase(lsn uint64) {
	f.mu.Lock()
	for i := range f.buf {
		f.buf[i] = Change{} // unpin retained blobs
	}
	f.blobBytes = 0
	f.start, f.last = lsn+1, lsn
	f.startA.Store(f.start)
	f.lastA.Store(f.last)
	f.cond.Broadcast()
	f.mu.Unlock()
}

// evictOldest drops the oldest retained record; caller holds f.mu and
// guarantees the ring is non-empty.
func (f *feed) evictOldest() {
	f.blobBytes -= changeBlobBytes(f.buf[(f.start-1)%uint64(len(f.buf))])
	f.buf[(f.start-1)%uint64(len(f.buf))] = Change{} // unpin
	f.start++
	f.startA.Store(f.start)
	f.evictions.Inc()
}

// grow doubles the ring, re-laying the retained records out in the new
// modulus; caller holds f.mu.
func (f *feed) grow() {
	newCap := feedInitRecords
	if len(f.buf) > 0 {
		newCap = len(f.buf) * 2
	}
	if newCap > feedMaxRecords {
		newCap = feedMaxRecords
	}
	nb := make([]Change, newCap)
	for lsn := f.start; lsn <= f.last; lsn++ {
		nb[(lsn-1)%uint64(newCap)] = f.buf[(lsn-1)%uint64(len(f.buf))]
	}
	f.buf = nb
}

// lsn returns the committed watermark.
func (f *feed) lsn() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// collectLocked copies records (since..last]; ok=false when the ring
// has already evicted part of that range. Caller holds f.mu.
func (f *feed) collectLocked(since uint64) ([]Change, bool) {
	if since >= f.last {
		return nil, true
	}
	if since+1 < f.start {
		return nil, false
	}
	out := make([]Change, 0, f.last-since)
	for lsn := since + 1; lsn <= f.last; lsn++ {
		out = append(out, f.buf[(lsn-1)%uint64(len(f.buf))])
	}
	return out, true
}

// --- Store API --------------------------------------------------------

// FeedLSN returns the LSN of the most recently committed change (0 for
// a store that has never been mutated).
func (st *Store) FeedLSN() uint64 { return st.feed.lsn() }

// Changes returns every committed change with LSN > since, in LSN
// order, and whether the range is complete: false means the ring has
// evicted records after `since` and the caller must resynchronize from
// a snapshot. Group boundaries are preserved — the result never ends
// mid-group, because the committed watermark only ever advances by
// whole groups.
func (st *Store) Changes(since uint64) ([]Change, bool) {
	f := st.feed
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.collectLocked(since)
}

// Subscription is a live Watch feed cursor. Groups arrive on C(), one
// complete commit group per message, in LSN order. A subscription that
// falls behind the ring's retention window is closed with Lagged()
// true; the consumer resynchronizes from a snapshot.
type Subscription struct {
	f    *feed
	ch   chan []Change
	done chan struct{} // closed by Close; unblocks a parked delivery send
	next uint64

	mu     sync.Mutex
	closed bool
	lagged bool
}

// Watch subscribes to the change feed starting after `since`. Pass a
// committed boundary LSN — 0, st.FeedLSN(), a Snapshot's LSN, or the
// last LSN of a group a consumer already processed; the watermark only
// advances by whole groups, so every such value sits on a group
// boundary and delivery can never start mid-group. buf is the channel
// depth; delivery happens on a dedicated goroutine, so slow consumers
// never block writers — they can only lag and lose the subscription.
// An error is returned when records after `since` have already been
// evicted.
func (st *Store) Watch(since uint64, buf int) (*Subscription, error) {
	f := st.feed
	f.mu.Lock()
	if since+1 < f.start && since < f.last {
		start := f.start // capture under f.mu; the error renders it unlocked
		f.mu.Unlock()
		return nil, fmt.Errorf("oms: watch from %d: records before %d already evicted", since, start)
	}
	f.subs++
	f.subsA.Add(1)
	f.mu.Unlock()
	if buf < 1 {
		buf = 1
	}
	sub := &Subscription{
		f:    f,
		ch:   make(chan []Change, buf),
		done: make(chan struct{}),
		next: since + 1,
	}
	go sub.run()
	return sub, nil
}

// C returns the delivery channel. It is closed when the subscription is
// Closed or falls behind the ring (check Lagged).
func (s *Subscription) C() <-chan []Change { return s.ch }

// Lagged reports whether the subscription was closed because the ring
// evicted records it had not yet delivered.
func (s *Subscription) Lagged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lagged
}

// Close cancels the subscription. The delivery channel is closed once
// the delivery goroutine exits — whether it was waiting for records
// (the cond broadcast wakes it) or parked on a send to a consumer that
// stopped receiving (the done channel unblocks it). Close is
// idempotent. (s.mu is released before f.mu is taken, so Close never
// nests the two locks — the delivery goroutine nests them the other
// way around.)
func (s *Subscription) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	s.mu.Unlock()
	s.f.mu.Lock()
	s.f.cond.Broadcast()
	s.f.mu.Unlock()
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// run is the delivery goroutine: wait for records past the cursor,
// gather the committed suffix, deliver it group by group. Delivery
// happens outside feedMu, so a blocked receiver never blocks writers.
func (s *Subscription) run() {
	f := s.f
	defer func() {
		f.mu.Lock()
		f.subs--
		f.subsA.Add(-1)
		f.mu.Unlock()
		close(s.ch)
	}()
	for {
		f.mu.Lock()
		for f.last < s.next && !s.isClosed() {
			f.cond.Wait()
		}
		if s.isClosed() {
			f.mu.Unlock()
			return
		}
		pending, ok := f.collectLocked(s.next - 1)
		f.mu.Unlock()
		if !ok {
			s.mu.Lock()
			s.lagged = true
			s.mu.Unlock()
			f.lagTrips.Inc()
			return
		}
		s.next = pending[len(pending)-1].LSN + 1
		for len(pending) > 0 {
			g := pending[0].Group
			n := 1
			for n < len(pending) && pending[n].Group == g {
				n++
			}
			select {
			case s.ch <- pending[:n:n]:
			case <-s.done:
				return
			}
			pending = pending[n:]
		}
	}
}

// --- wire encoding ----------------------------------------------------

// wireChange is the JSON form of a Change — the payload of the
// differential snapshot deltas the jcf persistence layer writes.
type wireChange struct {
	LSN     uint64               `json:"lsn"`
	Group   uint64               `json:"group"`
	Kind    ChangeKind           `json:"kind"`
	OID     OID                  `json:"oid,omitempty"`
	Class   string               `json:"class,omitempty"`
	Attrs   map[string]snapValue `json:"attrs,omitempty"`
	Attr    string               `json:"attr,omitempty"`
	Value   *snapValue           `json:"value,omitempty"`
	Cleared bool                 `json:"cleared,omitempty"`
	Rel     string               `json:"rel,omitempty"`
	From    OID                  `json:"from,omitempty"`
	To      OID                  `json:"to,omitempty"`
}

func toSnapValue(v Value) snapValue {
	return snapValue{Kind: v.Kind, Str: v.Str, Int: v.Int, Bool: v.Bool, Blob: v.Blob}
}

func fromSnapValue(sv snapValue) Value {
	return Value{Kind: sv.Kind, Str: sv.Str, Int: sv.Int, Bool: sv.Bool, Blob: sv.Blob}
}

// EncodeChanges renders a change sequence as a delta payload. The
// records must be in LSN order (as Changes returns them).
func EncodeChanges(recs []Change) ([]byte, error) {
	out := make([]wireChange, 0, len(recs))
	for _, c := range recs {
		w := wireChange{
			LSN: c.LSN, Group: c.Group, Kind: c.Kind,
			OID: c.OID, Class: c.Class,
			Attr: c.Attr, Cleared: c.Cleared,
			Rel: c.Rel, From: c.From, To: c.To,
		}
		if c.Kind == ChangeSet && !c.Cleared {
			sv := toSnapValue(c.Value)
			w.Value = &sv
		}
		if len(c.Attrs) > 0 {
			w.Attrs = make(map[string]snapValue, len(c.Attrs))
			for n, v := range c.Attrs {
				w.Attrs[n] = toSnapValue(v)
			}
		}
		out = append(out, w)
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("oms: encode changes: %w", err)
	}
	return data, nil
}

// DecodeChanges parses a delta payload written by EncodeChanges.
func DecodeChanges(data []byte) ([]Change, error) {
	var in []wireChange
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("oms: decode changes: %w", err)
	}
	out := make([]Change, 0, len(in))
	for _, w := range in {
		c := Change{
			LSN: w.LSN, Group: w.Group, Kind: w.Kind,
			OID: w.OID, Class: w.Class,
			Attr: w.Attr, Cleared: w.Cleared,
			Rel: w.Rel, From: w.From, To: w.To,
		}
		if w.Value != nil {
			c.Value = fromSnapValue(*w.Value)
		}
		if len(w.Attrs) > 0 {
			c.Attrs = make(map[string]Value, len(w.Attrs))
			for n, sv := range w.Attrs {
				c.Attrs[n] = fromSnapValue(sv)
			}
		}
		out = append(out, c)
	}
	return out, nil
}

// ReplayChanges applies a decoded change sequence to the store — the
// load half of differential persistence: decode the base snapshot, then
// replay each delta in chain order. Records are applied raw (no
// cardinality re-checking, no undo, no feed re-publication — the feed
// of a replayed store restarts at zero) but are validated against the
// schema like DecodeSnapshot, so a delta written against a different
// schema fails loudly instead of corrupting the store.
func (st *Store) ReplayChanges(recs []Change) error {
	st.lockAll()
	defer st.unlockAll()
	for _, c := range recs {
		if err := st.replayOneLocked(c); err != nil {
			return fmt.Errorf("oms: replay lsn %d: %w", c.LSN, err)
		}
	}
	return nil
}

func (st *Store) replayOneLocked(c Change) error {
	switch c.Kind {
	case ChangeCreate:
		cls := st.schema.class(c.Class)
		if cls == nil {
			return fmt.Errorf("unknown class %q", c.Class)
		}
		obj := newObject(c.OID, c.Class)
		for name, v := range c.Attrs {
			def, ok := cls.attr(name)
			if !ok {
				return fmt.Errorf("class %q has no attribute %q", c.Class, name)
			}
			if !kindCompatible(def.Kind, v.Kind) {
				return fmt.Errorf("attribute %s.%s wants %s, got %s", c.Class, name, def.Kind, v.Kind)
			}
			obj.attrs[name] = v
		}
		s := st.stripeOf(c.OID)
		s.objects[c.OID] = obj
		s.addClass(c.Class, c.OID)
		st.allocMu.Lock()
		if c.OID >= st.nextOID {
			st.nextOID = c.OID + 1
		}
		st.allocMu.Unlock()
	case ChangeSet:
		obj, ok := st.stripeOf(c.OID).objects[c.OID]
		if !ok {
			return fmt.Errorf("no object %d", c.OID)
		}
		if c.Cleared {
			delete(obj.attrs, c.Attr)
			return nil
		}
		def, ok := st.schema.class(obj.class).attr(c.Attr)
		if !ok {
			return fmt.Errorf("class %q has no attribute %q", obj.class, c.Attr)
		}
		if !kindCompatible(def.Kind, c.Value.Kind) {
			return fmt.Errorf("attribute %s.%s wants %s, got %s", obj.class, c.Attr, def.Kind, c.Value.Kind)
		}
		obj.attrs[c.Attr] = c.Value
	case ChangeLink:
		if st.schema.rel(c.Rel) == nil {
			return fmt.Errorf("unknown relationship %q", c.Rel)
		}
		fobj, ok := st.stripeOf(c.From).objects[c.From]
		if !ok {
			return fmt.Errorf("no object %d", c.From)
		}
		tobj, ok := st.stripeOf(c.To).objects[c.To]
		if !ok {
			return fmt.Errorf("no object %d", c.To)
		}
		if fobj.links[c.Rel] == nil {
			fobj.links[c.Rel] = map[OID]bool{}
		}
		if tobj.backlinks[c.Rel] == nil {
			tobj.backlinks[c.Rel] = map[OID]bool{}
		}
		fobj.links[c.Rel][c.To] = true
		tobj.backlinks[c.Rel][c.From] = true
		st.stripeOf(c.From).addRelFrom(c.Rel, c.From)
	case ChangeUnlink:
		st.unlinkNoUndo(c.Rel, c.From, c.To)
	case ChangeDelete:
		s := st.stripeOf(c.OID)
		obj, ok := s.objects[c.OID]
		if !ok {
			return fmt.Errorf("no object %d", c.OID)
		}
		// The feed emits the cascade unlinks before the delete record, so
		// a well-formed feed deletes an already-detached object; stray
		// links are detached defensively anyway.
		for rel, targets := range obj.links {
			for to := range targets {
				st.unlinkNoUndo(rel, c.OID, to)
			}
		}
		for rel, sources := range obj.backlinks {
			for from := range sources {
				st.unlinkNoUndo(rel, from, c.OID)
			}
		}
		delete(s.objects, c.OID)
		s.delClass(obj.class, c.OID)
	default:
		return fmt.Errorf("unknown change kind %d", int(c.Kind))
	}
	return nil
}
