package oms

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// testSchema builds a small schema used throughout the tests.
func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if err := s.AddClass("Cell",
		AttrDef{Name: "name", Kind: KindString, Required: true},
		AttrDef{Name: "rev", Kind: KindInt},
		AttrDef{Name: "published", Kind: KindBool},
		AttrDef{Name: "data", Kind: KindBlob},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("Version",
		AttrDef{Name: "num", Kind: KindInt, Required: true},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRel(RelDef{Name: "hasVersion", From: "Cell", To: "Version", FromCard: One, ToCard: Many}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRel(RelDef{Name: "master", From: "Cell", To: "Version", FromCard: Many, ToCard: One}); err != nil {
		t.Fatal(err)
	}
	return s
}

func mustCreate(t *testing.T, st *Store, class string, attrs map[string]Value) OID {
	t.Helper()
	oid, err := st.Create(class, attrs)
	if err != nil {
		t.Fatalf("Create(%s): %v", class, err)
	}
	return oid
}

func TestSchemaDuplicates(t *testing.T) {
	s := NewSchema()
	if err := s.AddClass("A"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("A"); err == nil {
		t.Fatal("duplicate class accepted")
	}
	if err := s.AddClass(""); err == nil {
		t.Fatal("empty class name accepted")
	}
	if err := s.AddClass("B", AttrDef{Name: "x"}, AttrDef{Name: "x"}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if err := s.AddRel(RelDef{Name: "r", From: "A", To: "Missing"}); err == nil {
		t.Fatal("relationship to unknown class accepted")
	}
	if err := s.AddRel(RelDef{Name: "r", From: "A", To: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRel(RelDef{Name: "r", From: "A", To: "A"}); err == nil {
		t.Fatal("duplicate relationship accepted")
	}
}

func TestCreateRequiresAttrs(t *testing.T) {
	st := NewStore(testSchema(t))
	if _, err := st.Create("Cell", nil); err == nil {
		t.Fatal("missing required attribute accepted")
	}
	if _, err := st.Create("Nope", nil); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := st.Create("Cell", map[string]Value{"name": I(3)}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := st.Create("Cell", map[string]Value{"name": S("alu"), "bogus": S("x")}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestAttrRoundTrip(t *testing.T) {
	st := NewStore(testSchema(t))
	oid := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu")})
	if got := st.GetString(oid, "name"); got != "alu" {
		t.Fatalf("name = %q, want alu", got)
	}
	if err := st.Set(oid, "rev", I(7)); err != nil {
		t.Fatal(err)
	}
	if got := st.GetInt(oid, "rev"); got != 7 {
		t.Fatalf("rev = %d, want 7", got)
	}
	if err := st.Set(oid, "published", B(true)); err != nil {
		t.Fatal(err)
	}
	if !st.GetBool(oid, "published") {
		t.Fatal("published = false, want true")
	}
	// Absent attribute: ok=false, no error.
	_, ok, err := st.Get(oid, "data")
	if err != nil || ok {
		t.Fatalf("Get(absent) = ok=%t err=%v, want false,nil", ok, err)
	}
	// Kind mismatch on Set.
	if err := st.Set(oid, "rev", S("x")); err == nil {
		t.Fatal("kind mismatch accepted on Set")
	}
}

func TestBlobIsolation(t *testing.T) {
	st := NewStore(testSchema(t))
	oid := mustCreate(t, st, "Cell", map[string]Value{"name": S("c")})
	buf := []byte("hello")
	if err := st.Set(oid, "data", Bytes(buf)); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // caller mutates its copy; store must be unaffected
	v, ok, err := st.Get(oid, "data")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%t err=%v", ok, err)
	}
	if string(v.Blob) != "hello" {
		t.Fatalf("store aliased caller buffer: %q", v.Blob)
	}
	v.Blob[0] = 'Y' // mutate returned copy; store must be unaffected
	v2, _, _ := st.Get(oid, "data")
	if string(v2.Blob) != "hello" {
		t.Fatalf("returned blob aliases store: %q", v2.Blob)
	}
}

func TestLinkCardinality(t *testing.T) {
	st := NewStore(testSchema(t))
	c1 := mustCreate(t, st, "Cell", map[string]Value{"name": S("a")})
	c2 := mustCreate(t, st, "Cell", map[string]Value{"name": S("b")})
	v1 := mustCreate(t, st, "Version", map[string]Value{"num": I(1)})
	v2 := mustCreate(t, st, "Version", map[string]Value{"num": I(2)})

	// hasVersion: FromCard=One (a version belongs to one cell), ToCard=Many.
	if err := st.Link("hasVersion", c1, v1); err != nil {
		t.Fatal(err)
	}
	if err := st.Link("hasVersion", c1, v2); err != nil {
		t.Fatal(err)
	}
	// v1 already owned by c1; c2 may not claim it.
	if err := st.Link("hasVersion", c2, v1); err == nil {
		t.Fatal("FromCard=One violated")
	}
	// Idempotent re-link is fine.
	if err := st.Link("hasVersion", c1, v1); err != nil {
		t.Fatalf("idempotent link: %v", err)
	}
	// master: ToCard=One (a cell has a single master version).
	if err := st.Link("master", c1, v1); err != nil {
		t.Fatal(err)
	}
	if err := st.Link("master", c1, v2); err == nil {
		t.Fatal("ToCard=One violated")
	}
	// Class checking.
	if err := st.Link("hasVersion", v1, c1); err == nil {
		t.Fatal("endpoint classes not checked")
	}
	if err := st.Link("nope", c1, v1); err == nil {
		t.Fatal("unknown relationship accepted")
	}

	got := st.Targets("hasVersion", c1)
	if len(got) != 2 || got[0] != v1 || got[1] != v2 {
		t.Fatalf("Targets = %v, want [%d %d]", got, v1, v2)
	}
	if src := st.Sources("hasVersion", v1); len(src) != 1 || src[0] != c1 {
		t.Fatalf("Sources = %v, want [%d]", src, c1)
	}
	if st.Target("master", c1) != v1 {
		t.Fatalf("Target(master) = %d, want %d", st.Target("master", c1), v1)
	}
}

func TestUnlink(t *testing.T) {
	st := NewStore(testSchema(t))
	c := mustCreate(t, st, "Cell", map[string]Value{"name": S("a")})
	v := mustCreate(t, st, "Version", map[string]Value{"num": I(1)})
	if err := st.Link("hasVersion", c, v); err != nil {
		t.Fatal(err)
	}
	if err := st.Unlink("hasVersion", c, v); err != nil {
		t.Fatal(err)
	}
	if got := st.Targets("hasVersion", c); len(got) != 0 {
		t.Fatalf("Targets after unlink = %v", got)
	}
	// Unlink of absent link is a no-op.
	if err := st.Unlink("hasVersion", c, v); err != nil {
		t.Fatal(err)
	}
	// After unlink the cardinality slot is free again.
	if err := st.Link("hasVersion", c, v); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteDetaches(t *testing.T) {
	st := NewStore(testSchema(t))
	c := mustCreate(t, st, "Cell", map[string]Value{"name": S("a")})
	v := mustCreate(t, st, "Version", map[string]Value{"num": I(1)})
	if err := st.Link("hasVersion", c, v); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(v); err != nil {
		t.Fatal(err)
	}
	if st.Exists(v) {
		t.Fatal("deleted object still exists")
	}
	if got := st.Targets("hasVersion", c); len(got) != 0 {
		t.Fatalf("dangling link after delete: %v", got)
	}
	if err := st.Delete(v); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestTransactionRollback(t *testing.T) {
	st := NewStore(testSchema(t))
	base := mustCreate(t, st, "Cell", map[string]Value{"name": S("keep"), "rev": I(1)})

	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := st.Begin(); err == nil {
		t.Fatal("nested Begin accepted")
	}
	tmp := mustCreate(t, st, "Cell", map[string]Value{"name": S("temp")})
	v := mustCreate(t, st, "Version", map[string]Value{"num": I(9)})
	if err := st.Link("hasVersion", tmp, v); err != nil {
		t.Fatal(err)
	}
	if err := st.Set(base, "rev", I(99)); err != nil {
		t.Fatal(err)
	}
	if err := st.Set(base, "published", B(true)); err != nil {
		t.Fatal(err)
	}
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}

	if st.Exists(tmp) || st.Exists(v) {
		t.Fatal("rollback left created objects")
	}
	if got := st.GetInt(base, "rev"); got != 1 {
		t.Fatalf("rev after rollback = %d, want 1", got)
	}
	if _, ok, _ := st.Get(base, "published"); ok {
		t.Fatal("rollback left newly set attribute")
	}
	if st.InTx() {
		t.Fatal("transaction still open after rollback")
	}
	if err := st.Rollback(); err == nil {
		t.Fatal("Rollback without Begin accepted")
	}
}

func TestTransactionRollbackRestoresDeleted(t *testing.T) {
	st := NewStore(testSchema(t))
	c := mustCreate(t, st, "Cell", map[string]Value{"name": S("a")})
	v := mustCreate(t, st, "Version", map[string]Value{"num": I(1)})
	if err := st.Link("hasVersion", c, v); err != nil {
		t.Fatal(err)
	}
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(v); err != nil {
		t.Fatal(err)
	}
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !st.Exists(v) {
		t.Fatal("rollback did not restore deleted object")
	}
	if got := st.Targets("hasVersion", c); len(got) != 1 || got[0] != v {
		t.Fatalf("rollback did not restore links: %v", got)
	}
}

func TestTransactionCommit(t *testing.T) {
	st := NewStore(testSchema(t))
	if err := st.Commit(); err == nil {
		t.Fatal("Commit without Begin accepted")
	}
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	oid := mustCreate(t, st, "Cell", map[string]Value{"name": S("a")})
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if !st.Exists(oid) {
		t.Fatal("committed object lost")
	}
}

func TestQueries(t *testing.T) {
	st := NewStore(testSchema(t))
	a := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu")})
	b := mustCreate(t, st, "Cell", map[string]Value{"name": S("mul")})
	mustCreate(t, st, "Version", map[string]Value{"num": I(1)})

	if got := st.All("Cell"); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("All(Cell) = %v", got)
	}
	if got := st.All(""); len(got) != 3 {
		t.Fatalf("All() = %v", got)
	}
	if got := st.FindByAttr("Cell", "name", S("mul")); len(got) != 1 || got[0] != b {
		t.Fatalf("FindByAttr = %v", got)
	}
	if got := st.FindByAttr("", "name", S("alu")); len(got) != 1 || got[0] != a {
		t.Fatalf("FindByAttr any class = %v", got)
	}
	if st.Count("Cell") != 2 || st.Count("Version") != 1 || st.Count("") != 3 {
		t.Fatal("Count mismatch")
	}
	if cls, err := st.ClassOf(a); err != nil || cls != "Cell" {
		t.Fatalf("ClassOf = %q, %v", cls, err)
	}
	if _, err := st.ClassOf(9999); err == nil {
		t.Fatal("ClassOf unknown oid accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	schema := testSchema(t)
	st := NewStore(schema)
	c := mustCreate(t, st, "Cell", map[string]Value{"name": S("alu"), "rev": I(3), "data": Bytes([]byte{1, 2, 3})})
	v := mustCreate(t, st, "Version", map[string]Value{"num": I(1)})
	if err := st.Link("hasVersion", c, v); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "oms.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	if ld.GetString(c, "name") != "alu" || ld.GetInt(c, "rev") != 3 {
		t.Fatal("attributes lost in round-trip")
	}
	blob, ok, err := ld.Get(c, "data")
	if err != nil || !ok || len(blob.Blob) != 3 || blob.Blob[2] != 3 {
		t.Fatalf("blob lost: %v %t %v", blob, ok, err)
	}
	if got := ld.Targets("hasVersion", c); len(got) != 1 || got[0] != v {
		t.Fatalf("links lost: %v", got)
	}
	// New objects in the loaded store must not collide with old OIDs.
	n, err := ld.Create("Cell", map[string]Value{"name": S("new")})
	if err != nil {
		t.Fatal(err)
	}
	if n == c || n == v {
		t.Fatalf("OID reuse after load: %d", n)
	}
}

func TestLoadRejectsUnknownClass(t *testing.T) {
	schema := testSchema(t)
	st := NewStore(schema)
	mustCreate(t, st, "Cell", map[string]Value{"name": S("x")})
	path := filepath.Join(t.TempDir(), "oms.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	empty := NewSchema()
	if _, err := Load(path, empty); err == nil {
		t.Fatal("load against incompatible schema accepted")
	}
	// Corrupt file.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, schema); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json"), schema); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCopyInOut(t *testing.T) {
	st := NewStore(testSchema(t))
	oid := mustCreate(t, st, "Cell", map[string]Value{"name": S("c")})
	dir := t.TempDir()
	src := filepath.Join(dir, "design.txt")
	content := strings.Repeat("wire w;\n", 100)
	if err := os.WriteFile(src, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := st.CopyIn(oid, "data", src)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) {
		t.Fatalf("CopyIn = %d bytes, want %d", n, len(content))
	}
	dst := filepath.Join(dir, "out", "design.txt")
	m, err := st.CopyOut(oid, "data", dst)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("CopyOut = %d bytes, want %d", m, n)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != content {
		t.Fatal("staged file content mismatch")
	}
	// Stats must reflect the blob traffic.
	_, in, out := st.Stats()
	if in < n || out < n {
		t.Fatalf("Stats blobIn=%d blobOut=%d, want >= %d each", in, out, n)
	}
	// Errors.
	if _, err := st.CopyIn(oid, "data", filepath.Join(dir, "missing")); err == nil {
		t.Fatal("CopyIn of missing file accepted")
	}
	if _, err := st.CopyOut(oid, "rev", dst); err == nil {
		t.Fatal("CopyOut of non-blob accepted")
	}
	if _, err := st.CopyOut(oid, "nothere", dst); err == nil {
		t.Fatal("CopyOut of absent attribute accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	st := NewStore(testSchema(t))
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				oid, err := st.Create("Cell", map[string]Value{"name": S("c")})
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				if err := st.Set(oid, "rev", I(int64(i))); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				_ = st.GetInt(oid, "rev")
				_ = st.All("Cell")
			}
		}(w)
	}
	wg.Wait()
	if got := st.Count("Cell"); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d", got, workers*perWorker)
	}
}

// Property: OIDs are unique and strictly increasing over any create sequence.
func TestPropertyOIDsUnique(t *testing.T) {
	st := NewStore(testSchema(t))
	f := func(names []string) bool {
		seen := map[OID]bool{}
		var last OID
		for _, n := range names {
			oid, err := st.Create("Cell", map[string]Value{"name": S(n)})
			if err != nil {
				return false
			}
			if seen[oid] || oid <= last {
				return false
			}
			seen[oid] = true
			last = oid
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Set/Get round-trips arbitrary strings and blobs exactly.
func TestPropertySetGetRoundTrip(t *testing.T) {
	st := NewStore(testSchema(t))
	oid := mustCreate(t, st, "Cell", map[string]Value{"name": S("p")})
	f := func(s string, blob []byte) bool {
		if err := st.Set(oid, "name", S(s)); err != nil {
			return false
		}
		if st.GetString(oid, "name") != s {
			return false
		}
		if err := st.Set(oid, "data", Bytes(blob)); err != nil {
			return false
		}
		v, ok, err := st.Get(oid, "data")
		if err != nil || !ok {
			return false
		}
		return v.Equal(Bytes(blob))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a rollback always restores the observable object count.
func TestPropertyRollbackRestoresCount(t *testing.T) {
	st := NewStore(testSchema(t))
	f := func(creates uint8) bool {
		before := st.Count("")
		if err := st.Begin(); err != nil {
			return false
		}
		for i := 0; i < int(creates%16); i++ {
			if _, err := st.Create("Version", map[string]Value{"num": I(int64(i))}); err != nil {
				_ = st.Rollback()
				return false
			}
		}
		if err := st.Rollback(); err != nil {
			return false
		}
		return st.Count("") == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValueEqualAndString(t *testing.T) {
	cases := []struct {
		a, b Value
		eq   bool
	}{
		{S("x"), S("x"), true},
		{S("x"), S("y"), false},
		{I(1), I(1), true},
		{I(1), I(2), false},
		{B(true), B(true), true},
		{B(true), B(false), false},
		{Bytes([]byte{1}), Bytes([]byte{1}), true},
		{Bytes([]byte{1}), Bytes([]byte{2}), false},
		{Bytes([]byte{1}), Bytes([]byte{1, 2}), false},
		{S("1"), I(1), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.eq {
			t.Errorf("case %d: Equal = %t, want %t", i, got, c.eq)
		}
	}
	for _, v := range []Value{S("a"), I(1), B(true), Bytes([]byte{1})} {
		if v.String() == "" {
			t.Errorf("empty String() for %v", v.Kind)
		}
	}
	if KindString.String() != "string" || KindBlob.String() != "blob" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind String empty")
	}
}

// --- sharded-kernel tests ------------------------------------------------

func TestRelatedAndObjectsOf(t *testing.T) {
	st := NewStore(testSchema(t))
	c1 := mustCreate(t, st, "Cell", map[string]Value{"name": S("a")})
	c2 := mustCreate(t, st, "Cell", map[string]Value{"name": S("b")})
	v1 := mustCreate(t, st, "Version", map[string]Value{"num": I(1)})
	v2 := mustCreate(t, st, "Version", map[string]Value{"num": I(2)})
	if err := st.Link("hasVersion", c1, v1); err != nil {
		t.Fatal(err)
	}
	if err := st.Link("hasVersion", c2, v2); err != nil {
		t.Fatal(err)
	}
	got := st.Related("hasVersion")
	want := []LinkPair{{From: c1, To: v1}, {From: c2, To: v2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Related = %v, want %v", got, want)
	}
	if objs := st.ObjectsOf("hasVersion"); len(objs) != 2 || objs[0] != c1 || objs[1] != c2 {
		t.Fatalf("ObjectsOf = %v", objs)
	}
	// Unlinking the last link of an object drops it from the index.
	if err := st.Unlink("hasVersion", c1, v1); err != nil {
		t.Fatal(err)
	}
	if objs := st.ObjectsOf("hasVersion"); len(objs) != 1 || objs[0] != c2 {
		t.Fatalf("ObjectsOf after unlink = %v", objs)
	}
	if pairs := st.Related("nope"); len(pairs) != 0 {
		t.Fatalf("Related(unknown) = %v", pairs)
	}
}

func TestClassIndexSurvivesDeleteAndRollback(t *testing.T) {
	st := NewStore(testSchema(t))
	a := mustCreate(t, st, "Cell", map[string]Value{"name": S("a")})
	b := mustCreate(t, st, "Cell", map[string]Value{"name": S("b")})
	if err := st.Delete(a); err != nil {
		t.Fatal(err)
	}
	if got := st.All("Cell"); len(got) != 1 || got[0] != b {
		t.Fatalf("All after delete = %v", got)
	}
	if st.Count("Cell") != 1 {
		t.Fatalf("Count after delete = %d", st.Count("Cell"))
	}
	// Rollback of a delete must restore the index entry.
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(b); err != nil {
		t.Fatal(err)
	}
	if st.Count("Cell") != 0 {
		t.Fatal("index not updated inside tx")
	}
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := st.All("Cell"); len(got) != 1 || got[0] != b {
		t.Fatalf("All after rollback = %v", got)
	}
	// Rollback of creates must remove index entries.
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, st, "Cell", map[string]Value{"name": S("tmp")})
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	if st.Count("Cell") != 1 {
		t.Fatalf("Count after create-rollback = %d", st.Count("Cell"))
	}
}

// TestNoInternalAliasing is the regression test for the "callers get
// copies, never internal references" invariant: mutate everything a getter
// returns and assert the store is unchanged.
func TestNoInternalAliasing(t *testing.T) {
	schema := testSchema(t)
	st := NewStore(schema)
	c := mustCreate(t, st, "Cell", map[string]Value{"name": S("a"), "data": Bytes([]byte("orig"))})
	v := mustCreate(t, st, "Version", map[string]Value{"num": I(1)})
	if err := st.Link("hasVersion", c, v); err != nil {
		t.Fatal(err)
	}

	// Blob values are copies both ways (also covered by TestBlobIsolation).
	val, _, _ := st.Get(c, "data")
	copy(val.Blob, "XXXX")
	if again, _, _ := st.Get(c, "data"); string(again.Blob) != "orig" {
		t.Fatalf("Get leaked internal blob: %q", again.Blob)
	}

	// Relationship listings are private slices.
	ts := st.Targets("hasVersion", c)
	ts[0] = 9999
	if again := st.Targets("hasVersion", c); len(again) != 1 || again[0] != v {
		t.Fatalf("Targets leaked internal state: %v", again)
	}
	ss := st.Sources("hasVersion", v)
	ss[0] = 9999
	if again := st.Sources("hasVersion", v); len(again) != 1 || again[0] != c {
		t.Fatalf("Sources leaked internal state: %v", again)
	}

	// Schema declarations are copies: mutating them must not corrupt
	// the store's validation.
	cls := schema.Class("Cell")
	cls.Attrs[0] = AttrDef{Name: "hacked", Kind: KindInt}
	cls.Name = "Hacked"
	if _, err := st.Create("Cell", map[string]Value{"name": S("b")}); err != nil {
		t.Fatalf("schema corrupted through Class() copy: %v", err)
	}
	rel := schema.Rel("hasVersion")
	rel.ToCard = One
	if err := st.Link("hasVersion", c, mustCreateVersion(t, st, 2)); err != nil {
		t.Fatalf("schema corrupted through Rel() copy: %v", err)
	}
	if schema.Class("Nope") != nil || schema.Rel("nope") != nil {
		t.Fatal("unknown lookups must return nil")
	}

	// Related pairs are private slices.
	pairs := st.Related("hasVersion")
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	pairs[0] = LinkPair{From: 1234, To: 4321}
	if again := st.Related("hasVersion"); again[0].From != c {
		t.Fatalf("Related leaked internal state: %v", again)
	}
}

func mustCreateVersion(t *testing.T, st *Store, num int64) OID {
	t.Helper()
	return mustCreate(t, st, "Version", map[string]Value{"num": I(num)})
}

// TestStressParallelMixedOps hammers the striped store from many
// goroutines with creates, sets, links, reads and deletes. Run under
// -race it is the kernel's data-race detector; the final invariants check
// that indexes and object maps agree after the storm.
func TestStressParallelMixedOps(t *testing.T) {
	st := NewStore(testSchema(t))
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []OID
			for i := 0; i < perWorker; i++ {
				cell, err := st.Create("Cell", map[string]Value{"name": S("c")})
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				ver, err := st.Create("Version", map[string]Value{"num": I(int64(i))})
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				if err := st.Set(cell, "rev", I(int64(i))); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				if err := st.Link("hasVersion", cell, ver); err != nil {
					t.Errorf("Link: %v", err)
					return
				}
				_ = st.GetInt(cell, "rev")
				_ = st.Targets("hasVersion", cell)
				_ = st.Count("Cell")
				if i%10 == 0 {
					_ = st.All("Cell")
					_ = st.Related("hasVersion")
				}
				mine = append(mine, cell)
				// Periodically delete one of our own earlier cells (its
				// version link detaches with it).
				if i%7 == 3 && len(mine) > 1 {
					victim := mine[0]
					mine = mine[1:]
					if err := st.Delete(victim); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Index and object map must agree exactly.
	for _, class := range []string{"Cell", "Version"} {
		oids := st.All(class)
		if len(oids) != st.Count(class) {
			t.Fatalf("index/count mismatch for %s: %d vs %d", class, len(oids), st.Count(class))
		}
		for _, oid := range oids {
			got, err := st.ClassOf(oid)
			if err != nil || got != class {
				t.Fatalf("index entry %d: ClassOf = %q, %v", oid, got, err)
			}
		}
	}
	// Every remaining hasVersion pair must join two live objects.
	for _, p := range st.Related("hasVersion") {
		if !st.Exists(p.From) || !st.Exists(p.To) {
			t.Fatalf("dangling pair %v", p)
		}
	}
}

// TestStressConcurrentTransactions drives transactions from many
// goroutines: whoever wins Begin does work and rolls back while everyone
// else performs plain operations. The store must stay race-free and every
// winner's rollback must restore its own object count.
func TestStressConcurrentTransactions(t *testing.T) {
	st := NewStore(testSchema(t))
	base := mustCreate(t, st, "Cell", map[string]Value{"name": S("base"), "rev": I(1)})
	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	var rollbacks atomic.Int64
	// txGate serializes the goroutines that do transactional writes so the
	// winner's count assertion cannot race a successor's creates; everyone
	// else still hammers Begin/Rollback and reads concurrently.
	var txGate sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if txGate.TryLock() {
					if err := st.Begin(); err != nil {
						// A contender holds a read-only tx; retry later.
						txGate.Unlock()
						continue
					}
					before := st.Count("Version")
					a, err := st.Create("Version", map[string]Value{"num": I(int64(i))})
					if err != nil {
						t.Errorf("tx Create: %v", err)
						txGate.Unlock()
						return
					}
					b, err := st.Create("Version", map[string]Value{"num": I(int64(i + 1))})
					if err != nil {
						t.Errorf("tx Create: %v", err)
						txGate.Unlock()
						return
					}
					_ = a
					if err := st.Delete(b); err != nil {
						t.Errorf("tx Delete: %v", err)
						txGate.Unlock()
						return
					}
					if err := st.Rollback(); err != nil {
						t.Errorf("Rollback: %v", err)
						txGate.Unlock()
						return
					}
					if after := st.Count("Version"); after != before {
						t.Errorf("rollback leaked: %d -> %d versions", before, after)
						txGate.Unlock()
						return
					}
					rollbacks.Add(1)
					txGate.Unlock()
				} else {
					// Contenders: exercise the Begin/Rollback rejection
					// paths and concurrent reads, never writes — so the
					// gate holder's undo log stays entirely its own.
					if err := st.Begin(); err == nil {
						_ = st.Rollback()
					}
					_ = st.GetInt(base, "rev")
					_ = st.Exists(base)
					_ = st.Count("Cell")
				}
			}
		}(w)
	}
	wg.Wait()
	if rollbacks.Load() == 0 {
		t.Fatal("no goroutine ever won a transaction")
	}
	if !st.Exists(base) {
		t.Fatal("base object lost")
	}
}

// TestStripeDistribution guards the stripe hash: sequential OIDs must
// spread across many stripes, not cluster in one.
func TestStripeDistribution(t *testing.T) {
	seen := map[int]bool{}
	for oid := OID(1); oid <= 256; oid++ {
		idx := stripeIdx(oid)
		if idx < 0 || idx >= numStripes {
			t.Fatalf("stripeIdx(%d) = %d out of range", oid, idx)
		}
		seen[idx] = true
	}
	if len(seen) < numStripes/2 {
		t.Fatalf("sequential OIDs hit only %d/%d stripes", len(seen), numStripes)
	}
}

func TestLoadRejectsCorruptAttributes(t *testing.T) {
	schema := testSchema(t)
	st := NewStore(schema)
	mustCreate(t, st, "Cell", map[string]Value{"name": S("x"), "rev": I(1)})
	path := filepath.Join(t.TempDir(), "oms.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Kind mismatch: rev declared int, snapshot says string.
	bad := strings.Replace(string(orig), `"rev":{"kind":1`, `"rev":{"kind":0`, 1)
	if bad == string(orig) {
		bad = strings.Replace(string(orig), `"kind":1`, `"kind":0`, 1)
	}
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, schema); err == nil {
		t.Fatal("kind-mismatched snapshot accepted")
	}
	// Missing required attribute: delete "name" from the object entirely
	// (renaming it would trip the unknown-attribute check instead).
	var snap map[string]any
	if err := json.Unmarshal(orig, &snap); err != nil {
		t.Fatal(err)
	}
	attrs := snap["objects"].([]any)[0].(map[string]any)["attrs"].(map[string]any)
	delete(attrs, "name")
	missing, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, missing, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, schema); err == nil {
		t.Fatal("snapshot missing a required attribute accepted")
	}
}
