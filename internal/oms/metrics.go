package oms

import (
	"repro/internal/obs"
)

// storeMetrics holds the store's latency instruments. The cells live by
// value inside Store (no registration required to record into them) and
// RegisterMetrics hands the registry pointers to the very same cells,
// so Stats-style views and /metrics scrapes can never disagree.
type storeMetrics struct {
	// applyLatency times Store.Apply end to end (all five phases).
	applyLatency obs.Histogram
	// applyReplicated times Store.ApplyReplicated end to end.
	applyReplicated obs.Histogram
	// stripeWait samples the wall time spent acquiring stripe write
	// locks (lockPair and Apply's masked lock phase) — the store's
	// contention signal.
	stripeWait obs.Histogram
	// snapshotHold times how long Snapshot holds every stripe
	// read-locked (the consistent-cut capture window).
	snapshotHold obs.Histogram
	// stripeSampler thins stripeWait to one acquisition in
	// stripeWaitStride.
	stripeSampler obs.Sampler
}

// stripeWaitStride thins stripe-wait timing to one acquisition in 64:
// two clock reads on every lock acquisition would be measurable at the
// contention benchmark's rates, and a 1/64 sample still fills the
// histogram within milliseconds under load.
const stripeWaitStride = 64

// FeedStats is a point-in-time view of the change-feed ring, read
// entirely from atomic mirrors maintained under feed.mu — taking it
// never touches the feed lock, so scrapes cannot contend with commits.
type FeedStats struct {
	// Depth is the number of records the ring currently retains.
	Depth uint64
	// Watermark is the highest committed LSN (== FeedLSN).
	Watermark uint64
	// Subscribers is the number of live Watch subscriptions.
	Subscribers int64
	// Evictions counts records dropped from the ring by the capacity or
	// blob-byte bound.
	Evictions int64
	// LagTrips counts subscriptions closed Lagged — consumers that fell
	// behind the retention window and had to resynchronize.
	LagTrips int64
}

// FeedStats returns the feed view.
func (st *Store) FeedStats() FeedStats {
	f := st.feed
	last, start := f.lastA.Load(), f.startA.Load()
	var depth uint64
	if last >= start {
		depth = last - start + 1
	}
	return FeedStats{
		Depth:       depth,
		Watermark:   last,
		Subscribers: f.subsA.Load(),
		Evictions:   f.evictions.Load(),
		LagTrips:    f.lagTrips.Load(),
	}
}

// RegisterMetrics exposes the store's instrument cells in reg. The
// gauge functions read only atomics, so a scrape never blocks a writer.
func (st *Store) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("oms_ops_total", &st.statOps)
	reg.RegisterCounter("oms_tx_commits_total", &st.statCommits)
	reg.RegisterCounter("oms_tx_rollbacks_total", &st.statRollback)
	reg.RegisterCounter("oms_blob_logical_in_bytes_total", &st.statBlobIn)
	reg.RegisterCounter("oms_blob_logical_out_bytes_total", &st.statBlobOut)
	reg.RegisterCounter("oms_blob_inline_bytes_total", &st.statBlobPhys)
	reg.RegisterHistogram("oms_apply_ns", &st.metrics.applyLatency)
	reg.RegisterHistogram("oms_apply_replicated_ns", &st.metrics.applyReplicated)
	reg.RegisterHistogram("oms_stripe_wait_ns", &st.metrics.stripeWait)
	reg.RegisterHistogram("oms_snapshot_hold_ns", &st.metrics.snapshotHold)
	f := st.feed
	reg.RegisterGaugeFunc("oms_feed_depth", func() int64 {
		last, start := f.lastA.Load(), f.startA.Load()
		if last < start {
			return 0
		}
		return int64(last - start + 1)
	})
	reg.RegisterGaugeFunc("oms_feed_watermark", func() int64 { return int64(f.lastA.Load()) })
	reg.RegisterGaugeFunc("oms_feed_subscribers", func() int64 { return f.subsA.Load() })
	reg.RegisterCounter("oms_feed_evictions_total", &f.evictions)
	reg.RegisterCounter("oms_feed_lag_trips_total", &f.lagTrips)
	if st.blobs != nil {
		st.blobs.RegisterMetrics(reg)
	}
}
