GO ?= go

.PHONY: check build vet test race bench bench-contention clean

## check is the CI gate: a fresh checkout must build, vet and pass the
## full test suite under the race detector. This is what keeps the
## missing-go.mod regression (and any data race in the sharded OMS
## kernel) from ever landing again.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench regenerates every paper table/figure benchmark.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

## bench-contention runs only the section 3.1/3.6 concurrency benchmarks
## used for the BENCH_*.json perf trajectory.
bench-contention:
	$(GO) test -bench 'BenchmarkE31LockContention|BenchmarkE36MetadataOps' -run '^$$' .

clean:
	$(GO) clean ./...
