GO ?= go

.PHONY: check build vet lint fuzz-seed test race stress-persist stress-atomic stress-feed stress-repl stress-blob bench bench-contention bench-persist bench-batch bench-feed bench-repl bench-blob bench-obs clean

## check is the CI gate: a fresh checkout must build, vet (go vet ./...),
## pass jcflint with zero unsuppressed findings, replay the decoder fuzz
## seed corpus, and pass the full test suite under the race detector,
## plus an extra multi-count run of the persistence crash-consistency
## stress test. This is what keeps the missing-go.mod regression, data
## races in the sharded OMS kernel, torn (oms, framework) snapshot
## pairs, diverging replicas, and unguarded replica writes from ever
## landing again.
check: build vet lint fuzz-seed race stress-persist stress-atomic stress-feed stress-repl stress-blob bench-obs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint runs jcflint — the repo-specific analyzer suite (stripe lock
## ordering, the guardWrite replica gate, dropped errors, feed-publish
## discipline, internal-alias returns, the declared lock hierarchy AND
## blocking-call allowlist in docs/lock-hierarchy.md, Apply-atomicity
## of jcf entry points, ChangeKind switch exhaustiveness, blocking
## calls under named locks, resource release on every path, and
## wrap-safe sentinel-error handling; see docs/analyzers.md) — and
## requires gofmt-clean sources. The module is loaded once and the 11
## analyzers run concurrently; -time prints the per-analyzer wall time.
## Suppressions take //lint:allow <analyzer> <reason>; the reason is
## mandatory, and known-deliberate sites are pinned loud by
## TestDeliberateBlockingStaysLoud.
lint:
	$(GO) run ./cmd/jcflint -time ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$fmt_out"; exit 1; fi

## fuzz-seed replays the fuzz seed corpora deterministically (no fuzzing
## engine): every seed the wire-format and frame-codec fuzzers ever
## minimized must keep decoding without panics or round-trip drift.
fuzz-seed:
	$(GO) test -run FuzzDecodeChanges ./internal/oms/
	$(GO) test -run FuzzReadFrame ./internal/repl/
	$(GO) test -run FuzzDecodeBlobRef ./internal/oms/blobstore/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## stress-persist hammers Framework.Save against concurrent designers
## under the race detector: every saved pair must Load and stay mutually
## consistent (see internal/jcf/stress_test.go).
stress-persist:
	$(GO) test -race -count=3 -run 'TestSaveCrashConsistencyUnderLoad|TestDeriveConfigVersionConcurrent' ./internal/jcf/

## stress-atomic hammers the grouped-operation paths under the race
## detector: batches must stay all-or-nothing against concurrent readers
## and CheckInData must only commit while the reservation is held (see
## internal/oms/batch_test.go and internal/jcf/atomic_test.go).
stress-atomic:
	$(GO) test -race -count=3 -run 'TestBatchAtomicUnderConcurrency|TestCheckInDataVsPublishRace|TestDeriveVariantConcurrent' ./internal/oms/ ./internal/jcf/

## stress-feed hammers the change feed under the race detector: every
## committed op must reach a Watch subscriber exactly once in LSN order
## with batch groups delivered whole (internal/oms/feed_test.go), and
## differential saves looping against concurrent designers must always
## load into a consistent pair (internal/jcf/feed_test.go).
stress-feed:
	$(GO) test -race -count=3 -run 'TestFeedConformanceStress|TestDifferentialSaveCrashConsistencyUnderLoad|TestNotifierPublishesFrameworkEvents' ./internal/oms/ ./internal/jcf/

## stress-repl hammers the replication subsystem under the race
## detector: the primary mutates under concurrent load while one replica
## follows from the start and a second bootstraps mid-stream from a
## snapshot, the transport is killed and reconnected twice, corrupt and
## gapped streams are injected — final replica fingerprints must equal
## the primary's and WaitFor barriers must observe the writes they cover
## (internal/repl/repl_test.go, internal/jcf/replica_test.go). Runs over
## both the in-process pipe and real TCP.
stress-repl:
	$(GO) test -race -count=3 -run 'TestReplicationConvergenceUnderLoad|TestReplicaStreamRobustness|TestReplicaReadOnlyView|TestReplicaViewPromote' ./internal/repl/ ./internal/jcf/

## stress-blob hammers the content-addressed checkin pipeline under the
## race detector: concurrent identical-content checkins must dedup to
## one physical copy without cross-wiring versions, Publish must gate on
## async blob durability, and both crash windows (blob-without-metadata,
## metadata-without-blob) must load into verifiable state with orphans
## GC-swept (internal/jcf/blob_test.go); replicas must lazily fetch
## missing blobs by digest (internal/repl/blob_test.go).
stress-blob:
	$(GO) test -race -count=3 -run 'TestStressBlob|TestReplicaBlobFetch' ./internal/jcf/ ./internal/repl/

## bench regenerates every paper table/figure benchmark.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

## bench-contention runs only the section 3.1/3.6 concurrency benchmarks
## used for the BENCH_*.json perf trajectory.
bench-contention:
	$(GO) test -bench 'BenchmarkE31LockContention|BenchmarkE36MetadataOps' -run '^$$' .

## bench-persist runs the writer-stall ablation behind BENCH_2.json:
## p99 Set latency during a concurrent snapshot, stop-the-world capture
## vs consistent cut. Record medians of the three counts.
bench-persist:
	$(GO) test -bench 'BenchmarkE37SnapshotWriterStall' -run '^$$' -benchtime 150000x -count 3 .

## bench-batch runs the grouped-checkin ablation behind BENCH_3.json:
## the section 3.6 copy-in sequence, op-by-op vs one atomic batch, at
## 4/16/64 concurrent designers. Each mode runs in its own process with
## a fixed iteration count so both do identical work on identical store
## sizes (heap/store growth otherwise penalizes whichever mode runs
## second). Record per-designer-count medians of the three counts.
bench-batch:
	$(GO) test -bench 'BenchmarkE38BatchCheckin/mode=op-by-op' -run '^$$' -benchtime 300x -count 3 .
	$(GO) test -bench 'BenchmarkE38BatchCheckin/mode=batched' -run '^$$' -benchtime 300x -count 3 .

## bench-feed runs the change-feed ablation behind BENCH_4.json: full vs
## differential Framework.SaveTo on the segment backend as the store
## grows (equal churn per save in both modes), plus the Watch delivery
## latency probe. Record medians.
bench-feed:
	$(GO) test -bench 'BenchmarkE39DifferentialSave' -run '^$$' -benchtime 20x -count 3 .
	$(GO) test -bench 'BenchmarkFeedWatchLatency' -run '^$$' -benchtime 20000x -count 3 .

## bench-repl runs the replication benchmarks behind BENCH_5.json:
## aggregate read throughput at 0 (primary-only baseline) / 1 / 2 / 4
## replicas under a background write load, and commit-to-replica
## visibility lag p50/p99 under sustained writes. Record medians of the
## three counts.
bench-repl:
	$(GO) test -bench 'BenchmarkE40ReplicaReadScaling' -run '^$$' -benchtime 20000x -count 3 .
	$(GO) test -bench 'BenchmarkE41ReplicationLag' -run '^$$' -benchtime 2000x -count 3 .

## bench-blob runs the content-addressed checkin benchmarks behind
## BENCH_6.json: checkin + metadata-commit (differential save) latency
## p50/p99 at 4KiB/256KiB/4MiB, inline baseline vs CAS+async pipeline;
## the dedup ratio on a re-checkin workload; and replication frame bytes
## for a large checkin before/after. Record medians of the three counts.
bench-blob:
	$(GO) test -bench 'BenchmarkE42BlobCheckin' -run '^$$' -benchtime 30x -count 3 .
	$(GO) test -bench 'BenchmarkE42BlobDedup|BenchmarkE42BlobReplFrames' -run '^$$' -benchtime 10x -count 3 .

## bench-obs runs the observability overhead probe behind BENCH_7.json:
## the BENCH_1 contention workload with instrumentation enabled (and a
## live registry) vs stripped at runtime (obs.SetEnabled(false)). Part
## of `make check` with a single short count as a smoke gate (the layer
## must keep building AND keep its cost visibly bounded); record
## medians of `-benchtime 2s -count 5` runs in BENCH_7.json.
bench-obs:
	$(GO) test -bench 'BenchmarkObsOverhead' -run '^$$' -benchtime 1s -count 1 .

clean:
	$(GO) clean ./...
