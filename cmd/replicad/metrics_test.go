package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/itc"
	"repro/internal/jcf"
	"repro/internal/obs"
	"repro/internal/oms/backend"
	"repro/internal/otod"
	"repro/internal/repl"
)

// fullRegistry registers every layer replicad can serve — primary side
// (framework, store, blob store), publisher, and a follower replica —
// into one registry, the superset a deployment could expose.
func fullRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	fw, err := jcf.New(jcf.Release40)
	if err != nil {
		t.Fatal(err)
	}
	be, err := backend.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.EnableBlobStore(be, 64); err != nil {
		t.Fatal(err)
	}
	pub := repl.NewPublisher(fw.ReplicationSource())
	defer pub.Close()
	not, err := fw.StartNotifier(itc.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	defer not.Stop()
	schema, err := otod.JCFModel().Schema()
	if err != nil {
		t.Fatal(err)
	}
	rep := repl.NewReplica(schema, nil)
	reg := obs.NewRegistry()
	fw.RegisterMetrics(reg)
	not.RegisterMetrics(reg)
	pub.RegisterMetrics(reg)
	rep.RegisterMetrics(reg)
	return reg
}

var catalogueRowRe = regexp.MustCompile("(?m)^\\| `([a-z0-9_]+)` \\|")

// TestMetricCatalogueComplete pins docs/observability.md to the code:
// every registered metric must have a catalogue row, and every
// catalogue row must name a metric that still registers.
func TestMetricCatalogueComplete(t *testing.T) {
	doc, err := os.ReadFile("../../docs/observability.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range catalogueRowRe.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no catalogue rows parsed from docs/observability.md")
	}
	reg := fullRegistry(t)
	registered := map[string]bool{}
	for _, name := range reg.Names() {
		registered[name] = true
		if !documented[name] {
			t.Errorf("metric %q is registered but has no row in docs/observability.md", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/observability.md documents %q but nothing registers it", name)
		}
	}
}

// TestMetricsEndpoints smoke-tests the live introspection surface the
// acceptance criteria name: /metrics serves feed lag, Apply latency,
// blob queue depth and the dedup-ratio counters; /vars parses as JSON
// over the same names.
func TestMetricsEndpoints(t *testing.T) {
	mux := metricsMux(fullRegistry(t))

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"repl_replica_lag",
		"oms_apply_ns",
		"blob_queue_depth",
		"blob_logical_bytes_total",
		"blob_physical_bytes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("/vars status %d", rec.Code)
	}
	var snap map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/vars is not JSON: %v", err)
	}
	if _, ok := snap["repl_replica_applied_lsn"]; !ok {
		t.Error("/vars is missing repl_replica_applied_lsn")
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", rec.Code)
	}
}
