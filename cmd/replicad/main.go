// Command replicad runs the replication subsystem from the shell: one
// process serves a primary framework's change feed over TCP, others
// follow it into read-only replica stores.
//
//	replicad serve  -state DIR [-segment] [-listen ADDR] [-metrics ADDR]
//	replicad follow -connect ADDR [-interval DUR] [-once] [-metrics ADDR]
//
// serve loads (or initializes) a JCF framework from a state directory,
// publishes its change feed on the listen address, and — because the
// state directory doubles as the seed backend — bootstraps far-behind
// followers by shipping the committed base + delta chain instead of
// cutting fresh snapshots. It keeps committing differential saves so
// that chain stays current.
//
// follow tails a publisher into an in-memory follower store, prints
// applied LSN / lag, and runs the incremental consistency check after
// each catch-up — the convergence self-check. With -once it exits after
// the first converged check (useful for scripted smoke tests).
//
// Both modes take -metrics ADDR to serve the live introspection surface
// (/metrics Prometheus text, /vars JSON, /debug/pprof) over the obs
// registry, and -slowops DUR to log checkin-pipeline spans slower than
// DUR with a per-stage breakdown. The follow status line is printed from
// the same registry snapshot the HTTP endpoints serve, so the CLI and a
// scraper can never disagree.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/jcf"
	"repro/internal/obs"
	"repro/internal/oms/backend"
	"repro/internal/otod"
	"repro/internal/repl"

	"flag"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "follow":
		err = follow(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "replicad:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  replicad serve  -state DIR [-segment] [-listen ADDR] [-save-interval DUR] [-metrics ADDR] [-slowops DUR]
  replicad follow -connect ADDR [-interval DUR] [-once] [-metrics ADDR] [-slowops DUR]`)
}

// openBackend opens the state directory as a file or segment backend.
func openBackend(dir string, segment bool) (backend.Backend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if segment {
		return backend.OpenSegment(dir)
	}
	return backend.OpenFile(dir)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	state := fs.String("state", "", "framework state directory (required)")
	segment := fs.Bool("segment", false, "use the segment/WAL backend (enables differential saves)")
	listen := fs.String("listen", "127.0.0.1:7070", "replication listen address")
	saveEvery := fs.Duration("save-interval", 5*time.Second, "differential save cadence (0 disables)")
	metricsAddr := fs.String("metrics", "", "introspection HTTP address (empty disables)")
	slowOps := fs.Duration("slowops", 0, "log pipeline spans slower than this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return fmt.Errorf("serve: -state is required")
	}
	b, err := openBackend(*state, *segment)
	if err != nil {
		return err
	}
	fw, err := jcf.LoadFrom(b)
	if err != nil {
		if _, lerr := backend.LoadManifest(b); lerr == nil {
			return err // a committed state exists but will not load: surface it
		}
		fmt.Println("no committed state; initializing a fresh JCF 4.0 framework")
		if fw, err = jcf.New(jcf.Release40); err != nil {
			return err
		}
		if err := fw.SaveTo(b); err != nil {
			return err
		}
	}
	pub := repl.NewPublisher(fw.ReplicationSource(), repl.WithSeedBackend(b))
	defer pub.Close()
	applySlowOps(*slowOps)
	reg := obs.NewRegistry()
	fw.RegisterMetrics(reg)
	pub.RegisterMetrics(reg)
	if err := startMetrics(*metricsAddr, reg); err != nil {
		return err
	}
	ln, err := repl.ListenTCP(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("serving replication on %s (state %s, feed lsn %d)\n", ln.Addr(), *state, fw.FeedLSN())
	if *saveEvery > 0 {
		go func() {
			for range time.Tick(*saveEvery) {
				if err := fw.SaveTo(b); err != nil {
					fmt.Fprintln(os.Stderr, "replicad: save:", err)
				}
			}
		}()
	}
	return pub.Serve(ln)
}

func follow(args []string) error {
	fs := flag.NewFlagSet("follow", flag.ExitOnError)
	connect := fs.String("connect", "", "publisher address (required)")
	interval := fs.Duration("interval", 2*time.Second, "status print cadence")
	once := fs.Bool("once", false, "exit after the first converged consistency check")
	metricsAddr := fs.String("metrics", "", "introspection HTTP address (empty disables)")
	slowOps := fs.Duration("slowops", 0, "log pipeline spans slower than this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("follow: -connect is required")
	}
	schema, err := otod.JCFModel().Schema()
	if err != nil {
		return err
	}
	rep := repl.NewReplica(schema, &repl.TCPDialer{Addr: *connect})
	rep.Start()
	defer rep.Close()
	view, err := jcf.NewReplicaView(rep.Store(), jcf.Release40)
	if err != nil {
		return err
	}
	applySlowOps(*slowOps)
	reg := obs.NewRegistry()
	rep.RegisterMetrics(reg)
	rep.Store().RegisterMetrics(reg)
	if err := startMetrics(*metricsAddr, reg); err != nil {
		return err
	}
	fmt.Printf("following %s\n", *connect)
	// The status line is a registry snapshot dump — the same cells the
	// /metrics and /vars handlers read — so the CLI and a scraper always
	// report identical numbers.
	for range time.Tick(*interval) {
		snap := reg.Snapshot()
		applied := snapInt(snap, "repl_replica_applied_lsn")
		lag := snapInt(snap, "repl_replica_lag")
		status := "catching up"
		if lag == 0 && (snapInt(snap, "repl_replica_frames_applied_total") > 0 ||
			snapInt(snap, "repl_replica_bootstraps_total") > 0) {
			if probs := view.CheckConsistency(); len(probs) == 0 {
				status = "converged, consistent"
			} else {
				status = fmt.Sprintf("converged, %d inconsistencies", len(probs))
			}
		}
		fmt.Printf("applied=%d lag=%d bootstraps=%d reconnects=%d gaps=%d frames_in=%d bytes_in=%d  %s\n",
			applied, lag,
			snapInt(snap, "repl_replica_bootstraps_total"),
			snapInt(snap, "repl_replica_reconnects_total"),
			snapInt(snap, "repl_replica_gaps_total"),
			snapInt(snap, "repl_replica_frames_in_total"),
			snapInt(snap, "repl_replica_bytes_in_total"),
			status)
		if err := rep.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "replicad: last session error:", err)
		}
		if *once && status == "converged, consistent" {
			return nil
		}
	}
	return nil
}
