package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/obs"
)

// metricsMux serves the live introspection surface over one registry:
//
//	/metrics      Prometheus-style text exposition
//	/vars         JSON snapshot (same cells, machine-friendly)
//	/debug/pprof  the standard Go profiler endpoints
//
// Every handler reads pure atomics (plus the registry's leaf mutex for
// the entry list), so a scrape never blocks an apply, an upload or a
// replication frame.
func metricsMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteProm(w); err != nil {
			// The peer went away mid-scrape; nothing to answer on.
			return
		}
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startMetrics binds addr and serves the introspection mux from a
// background goroutine. An empty addr is a no-op (the flag default).
func startMetrics(addr string, reg *obs.Registry) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	fmt.Printf("metrics on http://%s/metrics (also /vars, /debug/pprof)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, metricsMux(reg)); err != nil {
			fmt.Fprintln(os.Stderr, "replicad: metrics:", err)
		}
	}()
	return nil
}

// applySlowOps arms the slow-op log: pipeline spans whose total meets
// the threshold print a per-stage breakdown to stderr. 0 disables.
func applySlowOps(threshold time.Duration) {
	obs.SetSlowOpThreshold(threshold)
}

// snapInt reads one counter/gauge out of a registry snapshot, tolerating
// absence (0) so the printing loop never panics on a renamed metric.
func snapInt(snap map[string]any, name string) int64 {
	v, _ := snap[name].(int64)
	return v
}
