// Command hybridfw drives the hybrid JCF-FMCAD framework end to end: it
// sets up master and slave, runs the full encapsulated design flow
// (schematic entry -> simulation -> layout entry) on a generated design,
// and prints what each framework recorded. This is the prototype's
// "demonstration" scenario (section 4).
//
// Usage:
//
//	hybridfw -dir /tmp/hybrid -bits 8           # run under JCF 3.0
//	hybridfw -dir /tmp/hybrid -release 40       # run under JCF 4.0
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/jcf"
	"repro/internal/tools/dsim"
	"repro/internal/tools/schematic"
)

func main() {
	dir := flag.String("dir", "", "working directory for the hybrid framework (required)")
	release := flag.Int("release", 30, "JCF release level: 30 or 40")
	bits := flag.Int("bits", 8, "ripple-adder width of the demo design")
	resume := flag.Bool("resume", false, "reload a previously saved hybrid from -dir and print its state")
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *resume {
		if err := resumeRun(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "hybridfw: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*dir, jcf.Release(*release), *bits); err != nil {
		fmt.Fprintf(os.Stderr, "hybridfw: %v\n", err)
		os.Exit(1)
	}
}

// resumeRun reloads a saved hybrid and reports what survived the restart.
func resumeRun(dir string) error {
	h, err := core.LoadHybrid(dir)
	if err != nil {
		return err
	}
	fmt.Printf("hybrid JCF %s reloaded from %s\n", h.JCF.Release(), dir)
	fmt.Printf("bound FMCAD cells: %v\n", h.Bindings())
	if problems := h.VerifyMapping(); len(problems) != 0 {
		return fmt.Errorf("mapping problems after reload: %v", problems)
	}
	sync, err := h.SlaveSyncCheck()
	if err != nil {
		return err
	}
	fmt.Printf("mapping verified; slave sync problems: %d\n", len(sync))
	project, err := h.JCF.Project("demo")
	if err != nil {
		return err
	}
	summary, err := h.JCF.DesktopSummary(project)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s", summary)
	return nil
}

func run(dir string, release jcf.Release, bits int) error {
	h, err := core.NewHybrid(release, dir)
	if err != nil {
		return err
	}
	fmt.Printf("hybrid JCF %s + FMCAD framework at %s\n", h.JCF.Release(), dir)
	fmt.Printf("locked FMCAD menus: %v\n\n", h.Hooks.LockedMenus())

	if _, err := h.JCF.CreateUser("anna"); err != nil {
		return err
	}
	team, err := h.JCF.CreateTeam("demo-team")
	if err != nil {
		return err
	}
	uid, err := h.JCF.User("anna")
	if err != nil {
		return err
	}
	if err := h.JCF.AddMember(team, uid); err != nil {
		return err
	}
	project, err := h.JCF.CreateProject("demo", team)
	if err != nil {
		return err
	}
	cv, err := h.NewDesignCell(project, "adder", h.DefaultFlowName(), team)
	if err != nil {
		return err
	}
	if err := h.JCF.Reserve("anna", cv); err != nil {
		return err
	}
	binding, err := h.BindingFor(cv)
	if err != nil {
		return err
	}
	fmt.Printf("JCF cell version bound to FMCAD cell %q\n", binding.FMCADCell)

	// 1. Schematic entry.
	gen, err := schematic.GenRippleAdder(binding.FMCADCell, bits)
	if err != nil {
		return err
	}
	sres, err := h.RunSchematicEntry("anna", cv, func(s *schematic.Schematic) error {
		return s.CopyFrom(gen)
	}, core.RunOpts{})
	if err != nil {
		return err
	}
	_, _, gates, _ := gen.Stats()
	fmt.Printf("schematic entry: %d gates, slave v%d, JCF version %d\n", gates, sres.SlaveVersion, sres.OutputDOV)

	// 2. Simulation: add a few operand patterns and a clock-free run.
	stim := []byte(fmt.Sprintf("at 0 set cin 0\nat 0 set a0 1\nat 0 set b0 1\nrun %d\n", 100*bits))
	mres, waves, err := h.RunSimulation("anna", cv, stim, core.RunOpts{})
	if err != nil {
		return err
	}
	fmt.Printf("simulation: %d wave lines, derived from schematic version %d\n",
		countLines(waves), mres.InputDOV)

	// 3. Layout entry (generated from the schematic).
	lres, err := h.RunLayoutEntry("anna", cv, nil, core.RunOpts{})
	if err != nil {
		return err
	}
	fmt.Printf("layout entry: slave v%d, derived from schematic version %d\n\n",
		lres.SlaveVersion, lres.InputDOV)

	// What the master recorded.
	done, err := h.JCF.FlowComplete(cv)
	if err != nil {
		return err
	}
	fmt.Printf("flow complete: %t\n", done)
	closure := h.JCF.DerivationClosure(sres.OutputDOV)
	fmt.Printf("derivation closure of the schematic: %d versions (what-belongs-to-what)\n", len(closure))
	in, out := h.JCF.BlobTraffic()
	fmt.Printf("database design-data traffic: %d bytes in, %d bytes out\n", in, out)

	// Cross-probe one net through the wrappers.
	probe := h.EnableCrossProbe("anna")
	res, err := probe(cv, "s0")
	if err != nil {
		return err
	}
	fmt.Printf("cross-probe net %q: %d layout shapes highlighted\n", res.Net, len(res.Shapes))

	summary, err := h.JCF.DesktopSummary(project)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s", summary)

	// Persist the whole coupled environment for -resume.
	if err := h.Save(dir); err != nil {
		return err
	}
	fmt.Printf("\nstate saved; reload with: hybridfw -dir %s -resume\n", dir)
	_ = dsim.GateDelay
	return nil
}

func countLines(b []byte) int {
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}
