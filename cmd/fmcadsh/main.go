// Command fmcadsh is the FMCAD framework shell: it manages design
// libraries (real directories with a .meta file) and hosts the FML
// extension-language REPL. State persists in the library directory across
// invocations, like the original framework.
//
// Usage:
//
//	fmcadsh -lib DIR init NAME            # create a library
//	fmcadsh -lib DIR defview VIEW VTYPE   # declare a view
//	fmcadsh -lib DIR mkcell CELL VIEW...  # create a cell with cellviews
//	fmcadsh -lib DIR ls                   # list contents
//	fmcadsh -lib DIR -user U checkout CELL VIEW
//	fmcadsh -lib DIR -user U checkin CELL VIEW FILE
//	fmcadsh -lib DIR hier CELL VIEW       # expand the design hierarchy
//	fmcadsh -fml 'EXPR'                   # evaluate FML
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fmcad"
	"repro/internal/fml"
)

func main() {
	libDir := flag.String("lib", "", "library directory")
	user := flag.String("user", "designer", "user name for checkout/checkin")
	fmlExpr := flag.String("fml", "", "evaluate an FML expression and exit")
	flag.Parse()

	if *fmlExpr != "" {
		in := fml.NewInterp()
		in.Out = os.Stdout
		fml.NewHooks(in)
		v, err := in.Run(*fmlExpr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fmcadsh: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fml.Sprint(v))
		return
	}

	args := flag.Args()
	if *libDir == "" || len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := dispatch(*libDir, *user, args); err != nil {
		fmt.Fprintf(os.Stderr, "fmcadsh: %v\n", err)
		os.Exit(1)
	}
}

func dispatch(dir, user string, args []string) error {
	cmd, rest := args[0], args[1:]
	if cmd == "init" {
		if len(rest) != 1 {
			return fmt.Errorf("init wants a library name")
		}
		lib, err := fmcad.Create(dir, rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("created library %s at %s\n", lib.Name(), lib.Dir())
		return nil
	}
	lib, err := fmcad.Open(dir)
	if err != nil {
		return err
	}
	switch cmd {
	case "defview":
		if len(rest) != 2 {
			return fmt.Errorf("defview wants VIEW VTYPE")
		}
		return lib.DefineView(rest[0], rest[1])
	case "mkcell":
		if len(rest) < 1 {
			return fmt.Errorf("mkcell wants CELL [VIEW...]")
		}
		if err := lib.CreateCell(rest[0]); err != nil {
			return err
		}
		for _, view := range rest[1:] {
			if err := lib.CreateCellview(rest[0], view); err != nil {
				return err
			}
		}
		return nil
	case "ls":
		fmt.Printf("library %s (%s)\n", lib.Name(), lib.Dir())
		fmt.Printf("views: %v\n", lib.Views())
		for _, cell := range lib.Cells() {
			views, err := lib.Cellviews(cell)
			if err != nil {
				return err
			}
			fmt.Printf("cell %s\n", cell)
			for _, view := range views {
				versions, err := lib.Versions(cell, view)
				if err != nil {
					return err
				}
				locked, err := lib.LockedBy(cell, view)
				if err != nil {
					return err
				}
				status := ""
				if locked != "" {
					status = " [checked out by " + locked + "]"
				}
				fmt.Printf("  %s: versions %v%s\n", view, versions, status)
			}
		}
		return nil
	case "checkout":
		if len(rest) != 2 {
			return fmt.Errorf("checkout wants CELL VIEW")
		}
		session := lib.NewSession(user)
		wf, err := session.Checkout(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("checked out %s/%s v%d -> edit %s, then checkin\n", wf.Cell, wf.View, wf.BaseVersion, wf.Path)
		return nil
	case "checkin":
		if len(rest) != 3 {
			return fmt.Errorf("checkin wants CELL VIEW FILE")
		}
		// Rebuild the workfile handle for a fresh process: read the
		// user's edited file, place it as the working copy and check in.
		session := lib.NewSession(user)
		data, err := os.ReadFile(rest[2])
		if err != nil {
			return err
		}
		// The lock must already be held by this user from a prior
		// checkout; stage the new content through a fresh checkout if
		// free, otherwise reuse by cancel-and-retry semantics.
		if holder, err := lib.LockedBy(rest[0], rest[1]); err != nil {
			return err
		} else if holder != "" && holder != user {
			return fmt.Errorf("cellview is checked out by %s", holder)
		} else if holder == "" {
			wf, err := session.Checkout(rest[0], rest[1])
			if err != nil {
				return err
			}
			if err := os.WriteFile(wf.Path, data, 0o644); err != nil {
				return err
			}
			num, err := session.Checkin(wf)
			if err != nil {
				return err
			}
			fmt.Printf("checked in %s/%s v%d\n", rest[0], rest[1], num)
			return nil
		}
		// Holder == user from an earlier fmcadsh run: resume that
		// checkout, install the edited file as the working copy, check in.
		wf, err := session.Resume(rest[0], rest[1])
		if err != nil {
			return err
		}
		if err := os.WriteFile(wf.Path, data, 0o644); err != nil {
			return err
		}
		num, err := session.Checkin(wf)
		if err != nil {
			return err
		}
		fmt.Printf("checked in %s/%s v%d (resumed checkout)\n", rest[0], rest[1], num)
		return nil
	case "hier":
		if len(rest) != 2 {
			return fmt.Errorf("hier wants CELL VIEW")
		}
		root, err := lib.Expand(rest[0], rest[1])
		if err != nil {
			return err
		}
		printHier(root, 0)
		fmt.Printf("nodes=%d leaves=%d depth=%d\n", root.Count(), root.Leaves(), root.Depth())
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func printHier(n *fmcad.HierarchyNode, indent int) {
	for i := 0; i < indent; i++ {
		fmt.Print("  ")
	}
	label := n.InstName
	if label == "" {
		label = "(root)"
	}
	fmt.Printf("%s: %s/%s v%d\n", label, n.Cell, n.View, n.Version)
	for _, c := range n.Children {
		printHier(c, indent+1)
	}
}
