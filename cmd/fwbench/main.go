// Command fwbench regenerates the paper's tables and figures. Each
// experiment reproduces one artifact of the evaluation (Table 1, Figures
// 1-2, sections 3.1-3.6, and the capability matrix).
//
// Usage:
//
//	fwbench -list          # list experiments
//	fwbench -exp E31       # run one experiment
//	fwbench -all           # run everything in order
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "run a single experiment by id (e.g. T1, E31)")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-6s %-60s %s\n", "id", "title", "paper")
		for _, e := range experiments.Registry() {
			fmt.Printf("%-6s %-60s %s\n", e.ID, e.Title, e.Paper)
		}
	case *exp != "":
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "fwbench: unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		fmt.Printf("==== %s: %s (%s) ====\n", e.ID, e.Title, e.Paper)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fwbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	case *all:
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fwbench: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
