package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The driver is exercised end to end against the fixture module under
// testdata/module: a real go.mod tree (module fixmod) seeding exactly
// two unsuppressed findings (one guardwrite in jcf/jcf.go, one errflow
// in jcf/errs.go) plus one suppressed one. That pins the pieces unit
// tests of the analyzers cannot: exit codes, module discovery from the
// working directory, module-relative paths, the -json wire shape,
// baseline write/compare, and flag handling.

// chdir moves the process into dir for the duration of the test.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func fixtureModule(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func runDriver(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	if dir != "" {
		chdir(t, dir)
	}
	var out, errBuf bytes.Buffer
	code = run(&out, &errBuf, args)
	return code, out.String(), errBuf.String()
}

func TestFindingsExitOne(t *testing.T) {
	code, stdout, stderr := runDriver(t, fixtureModule(t))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d findings, want exactly 2 (the suppressed one must not print):\n%s", len(lines), stdout)
	}
	// Sorted by filename: errs.go's errflow seed, then jcf.go's
	// guardwrite one. Module-relative paths either way.
	if !strings.HasPrefix(lines[0], filepath.Join("jcf", "errs.go")+":") {
		t.Errorf("finding not module-relative: %q", lines[0])
	}
	if !strings.Contains(lines[0], "errflow:") || !strings.Contains(lines[0], "errors.Is") {
		t.Errorf("unexpected first finding: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], filepath.Join("jcf", "jcf.go")+":") {
		t.Errorf("finding not module-relative: %q", lines[1])
	}
	if !strings.Contains(lines[1], "guardwrite:") || !strings.Contains(lines[1], "Bad") {
		t.Errorf("unexpected second finding: %q", lines[1])
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr missing finding count: %q", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runDriver(t, fixtureModule(t), "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d JSON findings, want 2: %+v", len(findings), findings)
	}
	f := findings[1]
	if f.File != "jcf/jcf.go" {
		t.Errorf("File = %q, want %q (module-relative, forward slashes)", f.File, "jcf/jcf.go")
	}
	if f.Analyzer != "guardwrite" {
		t.Errorf("Analyzer = %q, want guardwrite", f.Analyzer)
	}
	if f.Line <= 0 || f.Column <= 0 {
		t.Errorf("position not populated: line %d col %d", f.Line, f.Column)
	}
	if !strings.Contains(f.Message, "does not call guardWrite") {
		t.Errorf("Message = %q", f.Message)
	}
}

func TestRunAndSkipSelection(t *testing.T) {
	// Running only an analyzer that has nothing to say there is clean...
	code, stdout, stderr := runDriver(t, fixtureModule(t), "-run", "noerrdrop")
	if code != 0 {
		t.Errorf("-run noerrdrop: exit %d, want 0; stdout %q stderr %q", code, stdout, stderr)
	}
	// ...as is skipping the two analyzers with findings.
	code, stdout, stderr = runDriver(t, "", "-skip", "guardwrite,errflow")
	if code != 0 {
		t.Errorf("-skip guardwrite,errflow: exit %d, want 0; stdout %q stderr %q", code, stdout, stderr)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	code, _, stderr := runDriver(t, "", "-run", "nope")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown analyzer "nope"`) {
		t.Errorf("stderr = %q", stderr)
	}
	if code, _, stderr = runDriver(t, "", "-skip", "everything"); code != 2 ||
		!strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("-skip with unknown name: exit %d stderr %q, want usage error", code, stderr)
	}
}

func TestEmptySelectionIsUsageError(t *testing.T) {
	code, _, stderr := runDriver(t, "", "-skip",
		"lockorder,guardwrite,noerrdrop,feedpublish,noalias,lockgraph,applyatomic,kindswitch,holdblock,releasepath,errflow")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no analyzers") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runDriver(t, "", "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 11 {
		t.Fatalf("-list printed %d analyzers, want 11:\n%s", len(lines), stdout)
	}
	for _, name := range []string{
		"lockorder", "guardwrite", "noerrdrop", "feedpublish",
		"noalias", "lockgraph", "applyatomic", "kindswitch",
		"holdblock", "releasepath", "errflow",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestOutsideModuleIsLoadError(t *testing.T) {
	code, _, stderr := runDriver(t, t.TempDir())
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr %q", code, stderr)
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	if code, _, _ := runDriver(t, "", "-frobnicate"); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestBaselineRoundTrip pins the warn-only landing workflow: write a
// snapshot of the current findings, then a -baseline run against it is
// clean (exit 0), while a NEW finding — here simulated by baselining
// only one of the two seeded analyzers — still fails.
func TestBaselineRoundTrip(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "lint.baseline")

	code, _, stderr := runDriver(t, fixtureModule(t), "-write-baseline", baseline)
	if code != 0 {
		t.Fatalf("-write-baseline: exit %d, want 0; stderr %q", code, stderr)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("baseline has %d line(s), want 2:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[0], "errflow:") || !strings.Contains(lines[1], "guardwrite:") {
		t.Errorf("baseline not the sorted findings snapshot:\n%s", data)
	}

	// Full run against the complete baseline: everything suppressed.
	code, stdout, stderr := runDriver(t, "", "-baseline", baseline)
	if code != 0 {
		t.Errorf("-baseline with full snapshot: exit %d, want 0; stdout %q stderr %q", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "2 baselined finding(s) suppressed") {
		t.Errorf("stderr missing suppression count: %q", stderr)
	}

	// A partial baseline must NOT mute the finding it does not record.
	partial := filepath.Join(t.TempDir(), "partial.baseline")
	if code, _, stderr := runDriver(t, "", "-run", "errflow", "-write-baseline", partial); code != 0 {
		t.Fatalf("-run errflow -write-baseline: exit %d; stderr %q", code, stderr)
	}
	code, stdout, _ = runDriver(t, "", "-baseline", partial)
	if code != 1 {
		t.Fatalf("-baseline with partial snapshot: exit %d, want 1 (guardwrite finding is new)", code)
	}
	if !strings.Contains(stdout, "guardwrite:") || strings.Contains(stdout, "errflow:") {
		t.Errorf("partial baseline suppressed the wrong findings:\n%s", stdout)
	}
}

// TestBaselineMissingFileIsLoadError: a baseline that cannot be read is
// a hard error, never silently treated as empty.
func TestBaselineMissingFileIsLoadError(t *testing.T) {
	code, _, stderr := runDriver(t, fixtureModule(t), "-baseline", filepath.Join(t.TempDir(), "nope"))
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr %q", code, stderr)
	}
}
