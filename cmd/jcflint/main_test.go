package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The driver is exercised end to end against the fixture module under
// testdata/module: a real go.mod tree (module fixmod) seeding exactly
// one unsuppressed guardwrite finding plus one suppressed one. That
// pins the pieces unit tests of the analyzers cannot: exit codes,
// module discovery from the working directory, module-relative paths,
// the -json wire shape, and flag handling.

// chdir moves the process into dir for the duration of the test.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func fixtureModule(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func runDriver(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	if dir != "" {
		chdir(t, dir)
	}
	var out, errBuf bytes.Buffer
	code = run(&out, &errBuf, args)
	return code, out.String(), errBuf.String()
}

func TestFindingsExitOne(t *testing.T) {
	code, stdout, stderr := runDriver(t, fixtureModule(t))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the suppressed one must not print):\n%s", len(lines), stdout)
	}
	// Module-relative path, forward or native slashes aside.
	if !strings.HasPrefix(lines[0], filepath.Join("jcf", "jcf.go")+":") {
		t.Errorf("finding not module-relative: %q", lines[0])
	}
	if !strings.Contains(lines[0], "guardwrite:") || !strings.Contains(lines[0], "Bad") {
		t.Errorf("unexpected finding: %q", lines[0])
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr missing finding count: %q", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runDriver(t, fixtureModule(t), "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d JSON findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.File != "jcf/jcf.go" {
		t.Errorf("File = %q, want %q (module-relative, forward slashes)", f.File, "jcf/jcf.go")
	}
	if f.Analyzer != "guardwrite" {
		t.Errorf("Analyzer = %q, want guardwrite", f.Analyzer)
	}
	if f.Line <= 0 || f.Column <= 0 {
		t.Errorf("position not populated: line %d col %d", f.Line, f.Column)
	}
	if !strings.Contains(f.Message, "does not call guardWrite") {
		t.Errorf("Message = %q", f.Message)
	}
}

func TestRunAndSkipSelection(t *testing.T) {
	// Running only an analyzer that has nothing to say there is clean...
	code, stdout, stderr := runDriver(t, fixtureModule(t), "-run", "noerrdrop")
	if code != 0 {
		t.Errorf("-run noerrdrop: exit %d, want 0; stdout %q stderr %q", code, stdout, stderr)
	}
	// ...as is skipping the one analyzer with a finding.
	code, stdout, stderr = runDriver(t, "", "-skip", "guardwrite")
	if code != 0 {
		t.Errorf("-skip guardwrite: exit %d, want 0; stdout %q stderr %q", code, stdout, stderr)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	code, _, stderr := runDriver(t, "", "-run", "nope")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown analyzer "nope"`) {
		t.Errorf("stderr = %q", stderr)
	}
	if code, _, stderr = runDriver(t, "", "-skip", "everything"); code != 2 ||
		!strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("-skip with unknown name: exit %d stderr %q, want usage error", code, stderr)
	}
}

func TestEmptySelectionIsUsageError(t *testing.T) {
	code, _, stderr := runDriver(t, "", "-skip",
		"lockorder,guardwrite,noerrdrop,feedpublish,noalias,lockgraph,applyatomic,kindswitch")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no analyzers") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runDriver(t, "", "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 8 {
		t.Fatalf("-list printed %d analyzers, want 8:\n%s", len(lines), stdout)
	}
	for _, name := range []string{
		"lockorder", "guardwrite", "noerrdrop", "feedpublish",
		"noalias", "lockgraph", "applyatomic", "kindswitch",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestOutsideModuleIsLoadError(t *testing.T) {
	code, _, stderr := runDriver(t, t.TempDir())
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr %q", code, stderr)
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	if code, _, _ := runDriver(t, "", "-frobnicate"); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
