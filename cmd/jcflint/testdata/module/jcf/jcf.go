// Package jcf (e2e fixture) seeds exactly one unsuppressed guardwrite
// finding plus one suppressed one, so the driver test can pin exit
// codes, module-relative paths, -json output, and the suppression
// protocol end to end.
package jcf

import "errors"

var errReadOnly = errors.New("read-only replica")

// Store mirrors the mutating surface the analyzer recognizes by name.
type Store struct{ n int }

func (s *Store) Apply(x int) (int, error) { s.n += x; return s.n, nil }

// Framework mirrors the desktop API shape.
type Framework struct {
	store   *Store
	replica bool
}

func (fw *Framework) guardWrite() error {
	if fw.replica {
		return errReadOnly
	}
	return nil
}

// Good guards before mutating — clean.
func (fw *Framework) Good(x int) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	_, err := fw.store.Apply(x)
	return err
}

// Bad mutates without a guard: the one finding the driver test expects.
func (fw *Framework) Bad(x int) error {
	_, err := fw.store.Apply(x)
	return err
}

// Allowed mutates without a guard too, but carries a suppression.
//
//lint:allow guardwrite e2e fixture for the suppression protocol
func (fw *Framework) Allowed(x int) error {
	_, err := fw.store.Apply(x)
	return err
}
