// errs.go seeds exactly one errflow finding for the driver e2e tests:
// a sentinel compared with == (IsStale), next to the wrap-safe
// errors.Is form (IsStaleOK) that must stay clean.
package jcf

import "errors"

// ErrStale is the fixture module's package-level sentinel.
var ErrStale = errors.New("stale workspace")

// IsStale tests the sentinel with ==: the errflow seed.
func IsStale(err error) bool {
	return err == ErrStale
}

// IsStaleOK is the wrap-safe form — clean.
func IsStaleOK(err error) bool {
	return errors.Is(err, ErrStale)
}
