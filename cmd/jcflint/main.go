// jcflint runs the repo's custom static-analysis suite
// (internal/analysis) over the module tree and fails on findings. It
// machine-enforces the invariants the kernel, replication, and desktop
// layers rely on by convention:
//
//	lockorder    stripe mutexes multi-acquired only via the sorted helpers
//	guardwrite   exported mutating jcf.Framework methods gate on guardWrite()
//	noerrdrop    no silently discarded errors in internal/... and cmd/...
//	feedpublish  feed LSN assignment only under the stripe hold
//	noalias      exported API never returns internal maps/slices by reference
//	lockgraph    cross-package lock order matches docs/lock-hierarchy.md
//	applyatomic  multi-mutation jcf entry points batch through one Store.Apply
//	kindswitch   switches over oms.ChangeKind exhaustive or defaulted
//	holdblock    no transitively-blocking call under a named lock (allowlist in docs/lock-hierarchy.md)
//	releasepath  acquired conns/subscriptions/files/batches released or escaped on every path
//	errflow      sentinel errors tested via errors.Is; wrapping uses %w
//
// The module is loaded and type-checked once; all analyzers run
// concurrently over the shared snapshot, call graph, and dataflow
// summaries. See docs/analyzers.md for the full catalog.
//
// Findings print as file:line: analyzer: message (module-relative
// paths), or as a JSON array with -json. A finding is suppressed by a
// trailing (or directly preceding) comment
//
//	//lint:allow <analyzer> <reason>
//
// and the reason is mandatory — a reason-less directive is itself a
// finding.
//
// Usage: jcflint [flags] [./...]  (the argument is accepted for
// familiarity; the tool always analyzes the module containing the
// working directory)
//
//	-list             list analyzers with one-line docs and exit
//	-run  a,b         run only the named analyzers
//	-skip a,b         skip the named analyzers
//	-json             machine-readable output
//	-time             print per-analyzer wall time to stderr
//	-write-baseline f write the current findings snapshot to f and exit 0
//	-baseline f       suppress findings recorded in f; fail only on new ones
//
// A baseline is a sorted "file:line: analyzer: message" snapshot. It
// lets a new analyzer land warn-only — write the baseline, wire the
// gate, then burn the baseline down — without ever muting NEW findings.
// Matching is exact (file, line, analyzer, message), so edits that move
// a baselined finding resurface it; that is the intended pressure.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// jsonFinding is the -json wire shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("jcflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	runSel := fs.String("run", "", "comma-separated analyzers to run (default: all)")
	skipSel := fs.String("skip", "", "comma-separated analyzers to skip")
	asJSON := fs.Bool("json", false, "print findings as a JSON array")
	timed := fs.Bool("time", false, "print per-analyzer wall time to stderr")
	writeBaseline := fs.String("write-baseline", "", "write the findings snapshot to `file` and exit 0")
	baseline := fs.String("baseline", "", "suppress findings recorded in `file`; fail only on new ones")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: jcflint [-list] [-run a,b] [-skip a,b] [-json] [-time] [-write-baseline f | -baseline f] [./...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*runSel, *skipSel)
	if err != nil {
		fmt.Fprintln(stderr, "jcflint:", err)
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "jcflint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "jcflint:", err)
		return 2
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fmt.Fprintln(stderr, "jcflint:", err)
		return 2
	}
	snap, err := analysis.LoadSnapshot(root, modPath)
	if err != nil {
		fmt.Fprintln(stderr, "jcflint:", err)
		return 2
	}
	diags, timings := analysis.RunTimed(snap, analyzers)
	if *timed {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "jcflint: %-12s %8.1fms\n", tm.Analyzer, float64(tm.Elapsed.Microseconds())/1000)
		}
	}

	// Module-relative paths: stable across checkouts.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}

	if *writeBaseline != "" {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(*writeBaseline, []byte(sb.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "jcflint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "jcflint: wrote baseline with %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "jcflint:", err)
			return 2
		}
		known := map[string]bool{}
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				known[line] = true
			}
		}
		var fresh []analysis.Diagnostic
		for _, d := range diags {
			if !known[d.String()] {
				fresh = append(fresh, d)
			}
		}
		if n := len(diags) - len(fresh); n > 0 {
			fmt.Fprintf(stderr, "jcflint: %d baselined finding(s) suppressed\n", n)
		}
		diags = fresh
	}

	if *asJSON {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File:     filepath.ToSlash(d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "jcflint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "jcflint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers applies -run/-skip to the full suite. Unknown names
// are usage errors: a typo must not silently run nothing.
func selectAnalyzers(runSel, skipSel string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	parse := func(sel string) (map[string]bool, error) {
		if sel == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(sel, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	runSet, err := parse(runSel)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skipSel)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if runSet != nil && !runSet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selection leaves no analyzers to run")
	}
	return out, nil
}
