// jcflint runs the repo's custom static-analysis suite
// (internal/analysis) over the module tree and fails on findings. It
// machine-enforces the invariants the kernel, replication, and desktop
// layers rely on by convention:
//
//	lockorder    stripe mutexes multi-acquired only via the sorted helpers
//	guardwrite   exported mutating jcf.Framework methods gate on guardWrite()
//	noerrdrop    no silently discarded errors in internal/...
//	feedpublish  feed LSN assignment only under the stripe hold
//	noalias      exported API never returns internal maps/slices by reference
//
// Findings print as file:line: analyzer: message. A finding is
// suppressed by a trailing (or directly preceding) comment
//
//	//lint:allow <analyzer> <reason>
//
// and the reason is mandatory — a reason-less directive is itself a
// finding. Exit status is 1 when any unsuppressed finding remains.
//
// Usage: jcflint [./...]  (the argument is accepted for familiarity;
// the tool always analyzes the module containing the working directory)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jcflint [-list] [./...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadTree(root, modPath)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(pkgs, analysis.Analyzers())
	for _, d := range diags {
		// Print module-relative paths: stable across checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "jcflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jcflint:", err)
	os.Exit(1)
}
