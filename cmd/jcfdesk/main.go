// Command jcfdesk is the JCF desktop: the framework's only user
// interface (section 2.1 — metadata is fully under framework control and
// reachable solely through desktop methods).
//
// Usage:
//
//	jcfdesk -model              # print the Figure 1 information model
//	jcfdesk -demo               # run a scripted multi-user desktop session
//	jcfdesk -release 40 -demo   # same session on the future JCF release
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/flow"
	"repro/internal/jcf"
	"repro/internal/otod"
)

func main() {
	model := flag.Bool("model", false, "print the JCF 3.0 information architecture (Figure 1)")
	demo := flag.Bool("demo", false, "run a scripted desktop session")
	release := flag.Int("release", 30, "JCF release level: 30 or 40")
	state := flag.String("state", "", "framework state directory (persists the session)")
	show := flag.String("show", "", "load -state and print the desktop summary of the named project")
	flag.Parse()

	switch {
	case *model:
		fmt.Print(otod.JCFModel().Render())
	case *show != "":
		if *state == "" {
			fmt.Fprintln(os.Stderr, "jcfdesk: -show requires -state")
			os.Exit(2)
		}
		if err := showProject(*state, *show); err != nil {
			fmt.Fprintf(os.Stderr, "jcfdesk: %v\n", err)
			os.Exit(1)
		}
	case *demo:
		if err := runDemoPersisted(jcf.Release(*release), *state); err != nil {
			fmt.Fprintf(os.Stderr, "jcfdesk: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// showProject reloads a persisted framework and prints one project.
func showProject(stateDir, projectName string) error {
	fw, err := jcf.Load(stateDir)
	if err != nil {
		return err
	}
	project, err := fw.Project(projectName)
	if err != nil {
		return err
	}
	summary, err := fw.DesktopSummary(project)
	if err != nil {
		return err
	}
	fmt.Print(summary)
	return nil
}

// runDemoPersisted runs the demo and, when a state directory is given,
// saves the framework there so later invocations can -show it.
func runDemoPersisted(release jcf.Release, stateDir string) error {
	fw, err := runDemo(release)
	if err != nil {
		return err
	}
	if stateDir != "" {
		if err := fw.Save(stateDir); err != nil {
			return err
		}
		fmt.Printf("\nstate saved to %s (reload with -state %s -show chip1)\n", stateDir, stateDir)
	}
	return nil
}

// runDemo drives a complete desktop session: resources, a project, team
// work with workspaces, a flow enactment and the consistency check. It
// returns the framework so the caller can persist it.
func runDemo(release jcf.Release) (*jcf.Framework, error) {
	fw, err := jcf.New(release)
	if err != nil {
		return nil, err
	}
	fmt.Printf("JCF %s desktop session\n\n", fw.Release())

	// Administrator: resources.
	for _, u := range []string{"anna", "bert"} {
		if _, err := fw.CreateUser(u); err != nil {
			return nil, err
		}
	}
	team, err := fw.CreateTeam("vlsi")
	if err != nil {
		return nil, err
	}
	for _, u := range []string{"anna", "bert"} {
		uid, err := fw.User(u)
		if err != nil {
			return nil, err
		}
		if err := fw.AddMember(team, uid); err != nil {
			return nil, err
		}
	}
	for _, tool := range []string{"schematic-editor", "simulator", "layout-editor"} {
		if _, err := fw.CreateTool(tool); err != nil {
			return nil, err
		}
	}
	f := flow.New("frontend")
	if err := f.AddActivity(flow.Activity{Name: "entry", Tool: "schematic-editor", Creates: []string{"schematic"}}); err != nil {
		return nil, err
	}
	if err := f.AddActivity(flow.Activity{Name: "verify", Tool: "simulator", Needs: []string{"schematic"}}); err != nil {
		return nil, err
	}
	if err := f.AddPrecedes("entry", "verify"); err != nil {
		return nil, err
	}
	if _, err := fw.RegisterFlow(f); err != nil {
		return nil, err
	}
	fmt.Printf("resources: users=%v flows=%v\n", fw.Members(team), fw.Flows())

	// Project data.
	project, err := fw.CreateProject("chip1", team)
	if err != nil {
		return nil, err
	}
	cell, err := fw.CreateCell(project, "alu")
	if err != nil {
		return nil, err
	}
	cv, err := fw.CreateCellVersion(cell, "frontend", team)
	if err != nil {
		return nil, err
	}

	// Workspace: anna reserves, bert is refused, anna publishes.
	if err := fw.Reserve("anna", cv); err != nil {
		return nil, err
	}
	fmt.Printf("anna reserved alu v1 in her workspace\n")
	if err := fw.Reserve("bert", cv); err != nil {
		fmt.Printf("bert refused (as expected): %v\n", err)
	}
	// Flow enactment.
	if err := fw.StartActivity("anna", cv, "verify"); err != nil {
		fmt.Printf("verify before entry refused (as expected): %v\n", err)
	}
	if err := fw.StartActivity("anna", cv, "entry"); err != nil {
		return nil, err
	}
	if err := fw.FinishActivity("anna", cv, "entry", true); err != nil {
		return nil, err
	}
	if err := fw.StartActivity("anna", cv, "verify"); err != nil {
		return nil, err
	}
	if err := fw.FinishActivity("anna", cv, "verify", true); err != nil {
		return nil, err
	}
	if err := fw.Publish("anna", cv); err != nil {
		return nil, err
	}
	fmt.Printf("flow complete, alu v1 published\n\n")

	summary, err := fw.DesktopSummary(project)
	if err != nil {
		return nil, err
	}
	fmt.Print(summary)

	problems := fw.CheckConsistency()
	fmt.Printf("\nconsistency check: %d problems\n", len(problems))
	for _, p := range problems {
		fmt.Printf("  [%s] %s\n", p.Kind, p.Detail)
	}
	return fw, nil
}
